"""Tests for the Multi-Paxos baseline."""

import pytest

from repro.baselines.multipaxos import PaxosCluster
from repro.objects.kvstore import KVStoreSpec, get, put
from repro.verify import check_linearizable


@pytest.fixture
def cluster():
    c = PaxosCluster(KVStoreSpec(), n=5, seed=3)
    c.start()
    return c


def test_write_read_roundtrip(cluster):
    assert cluster.execute(2, put("x", 1)) is None
    assert cluster.execute(4, get("x")) == 1


def test_reads_cost_messages(cluster):
    cluster.execute(2, put("x", 1))
    before = cluster.net.total_sent()
    cluster.execute(1, get("x"))
    assert cluster.net.total_sent() > before


def test_mixed_workload_linearizable(cluster):
    ops = [(i % 5, put("k", i)) for i in range(10)]
    ops += [(i % 5, get("k")) for i in range(10)]
    cluster.execute_all(ops)
    result = check_linearizable(cluster.spec, cluster.history(),
                                partition_by_key=True)
    assert result, result.reason


def test_all_replicas_converge(cluster):
    cluster.execute_all([(i % 5, put(f"k{i}", i)) for i in range(10)])
    cluster.run(1000.0)
    states = {repr(r.state) for r in cluster.replicas}
    assert len(states) == 1


def test_leader_failover(cluster):
    cluster.execute(0, put("x", 1))
    cluster.crash(0)
    cluster.run(500.0)
    assert cluster.execute(1, put("y", 2), timeout=8000.0) is None
    assert cluster.execute(2, get("x"), timeout=8000.0) == 1
    assert cluster.execute(3, get("y"), timeout=8000.0) == 2


def test_no_slot_chosen_twice_differently(cluster):
    cluster.execute_all([(i % 5, put("k", i)) for i in range(15)])
    cluster.run(500.0)
    reference = {}
    for replica in cluster.replicas:
        for slot, value in replica.chosen.items():
            assert reference.setdefault(slot, value) == value


def test_duplicate_submission_committed_once(cluster):
    # The client retry loop may deliver the same instance repeatedly; the
    # leader must deduplicate.
    cluster.execute(1, put("c", 1))
    counts = {}
    leader = cluster.replicas[0]
    for slot, value in leader.chosen.items():
        counts[value.op_id] = counts.get(value.op_id, 0) + 1
    assert all(count == 1 for count in counts.values())


def test_safety_under_pre_gst_chaos():
    c = PaxosCluster(KVStoreSpec(), n=5, seed=5, gst=600.0,
                     pre_gst_drop_prob=0.3)
    c.start()
    futures = [c.submit(i % 5, put("k", i)) for i in range(6)]
    futures += [c.submit(i % 5, get("k")) for i in range(6)]
    c.run(8000.0)
    assert all(f.done for f in futures)
    assert check_linearizable(c.spec, c.history(), partition_by_key=True)
