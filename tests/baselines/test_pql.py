"""Tests for the Paxos Quorum Leases baseline."""

import pytest

from repro.baselines.pql import PQLCluster
from repro.objects.kvstore import KVStoreSpec, get, put
from repro.verify import check_linearizable


@pytest.fixture
def cluster():
    c = PQLCluster(KVStoreSpec(), n=5, seed=3)
    c.start()
    c.run(200.0)
    return c


def test_write_read_roundtrip(cluster):
    assert cluster.execute(2, put("x", 1)) is None
    assert cluster.execute(4, get("x")) == 1


def test_quiet_reads_are_local(cluster):
    cluster.execute(2, put("x", 1))
    cluster.run(100.0)
    before = cluster.net.sent_by_category().get("consensus", 0)
    future = cluster.submit(3, get("x"))
    assert future.done
    after = cluster.net.sent_by_category().get("consensus", 0)
    assert after == before


def test_lease_renewal_is_quadratic_and_four_message(cluster):
    cluster.net.reset_counters()
    renewal = cluster.replicas[0].lease_renewal
    cluster.run(renewal)
    lease_msgs = cluster.net.sent_by_category().get("lease", 0)
    n = cluster.n
    # One renewal round: n grantors x (n-1) holders x 4 messages.
    expected = 4 * n * (n - 1)
    assert lease_msgs >= expected * 0.8


def test_any_pending_write_blocks_all_reads(cluster):
    """PQL has no conflict awareness: a write to one key blocks reads of
    every key at a holder that saw the accept."""
    cluster.execute(2, put("x", 1))
    cluster.execute(2, put("unrelated", 1))
    cluster.run(100.0)
    # Start a write and catch a holder mid-revocation.
    write_future = cluster.submit(0, put("unrelated", 2))
    holder = cluster.replicas[3]
    cluster.run_until(
        lambda: holder.max_seen_slot > holder.applied_upto, timeout=500.0
    )
    read_future = holder.submit(get("x"))  # different key entirely!
    assert not read_future.done
    cluster.run_until(lambda: read_future.done, timeout=2000.0)
    cluster.run_until(lambda: write_future.done, timeout=2000.0)


def test_mixed_workload_linearizable(cluster):
    ops = [(i % 5, put("k", i)) for i in range(8)]
    ops += [(i % 5, get("k")) for i in range(8)]
    cluster.execute_all(ops)
    assert check_linearizable(cluster.spec, cluster.history(),
                              partition_by_key=True)


def test_reads_block_without_majority_leases():
    c = PQLCluster(KVStoreSpec(), n=5, seed=4, lease_duration=50.0,
                   lease_renewal=20.0)
    c.start()
    c.run(200.0)
    c.execute(0, put("x", 1))
    # Cut a holder off from everyone: its leases expire and cannot renew.
    c.net.isolate(3, start=c.sim.now)
    c.run(200.0)
    holder = c.replicas[3]
    assert holder.leases_active() < holder.majority
    future = holder.submit(get("x"))
    c.run(300.0)
    assert not future.done
    c.net.heal_all()
    c.run_until(lambda: future.done, timeout=2000.0)
    assert future.value == 1
