"""Tests for the Raft baseline."""

import pytest

from repro.baselines.raft import RaftCluster
from repro.objects.kvstore import KVStoreSpec, get, put
from repro.verify import check_linearizable


@pytest.fixture
def cluster():
    c = RaftCluster(KVStoreSpec(), n=5, seed=3)
    c.start()
    c.run(500.0)
    return c


def test_single_leader_elected(cluster):
    leaders = [r for r in cluster.replicas if r.role == "leader"]
    assert len(leaders) == 1


def test_write_read_roundtrip(cluster):
    assert cluster.execute(2, put("x", 1)) is None
    assert cluster.execute(4, get("x")) == 1


def test_reads_are_never_local(cluster):
    """The paper: Raft reads always go to the leader and round-trip a
    heartbeat quorum before responding."""
    cluster.execute(2, put("x", 1))
    follower = next(r.pid for r in cluster.replicas if r.role != "leader")
    before = cluster.net.total_sent()
    cluster.execute(follower, get("x"))
    read_cost = cluster.net.total_sent() - before
    # At least: forward to leader + heartbeat round (n-1 out, acks back)
    # + reply.
    assert read_cost >= 2 + (cluster.n - 1)


def test_leader_reads_also_block_on_quorum(cluster):
    cluster.execute(2, put("x", 1))
    leader = next(r for r in cluster.replicas if r.role == "leader")
    before = cluster.net.total_sent()
    future = leader.submit(get("x"))
    assert not future.done  # must wait for the heartbeat round
    cluster.run_until(lambda: future.done)
    assert future.value == 1
    assert cluster.net.total_sent() > before


def test_mixed_workload_linearizable(cluster):
    ops = [(i % 5, put("k", i)) for i in range(8)]
    ops += [(i % 5, get("k")) for i in range(8)]
    cluster.execute_all(ops)
    result = check_linearizable(cluster.spec, cluster.history(),
                                partition_by_key=True)
    assert result, result.reason


def test_leader_crash_failover(cluster):
    cluster.execute(2, put("x", 1))
    leader = next(r for r in cluster.replicas if r.role == "leader")
    cluster.crash(leader.pid)
    cluster.run(800.0)
    other = next(r.pid for r in cluster.replicas if not r.crashed)
    assert cluster.execute(other, put("y", 2), timeout=8000.0) is None
    assert cluster.execute(other, get("x"), timeout=8000.0) == 1


def test_up_to_date_restriction_preserves_committed_entries(cluster):
    # Cut one follower off, commit entries, then crash the leader: the
    # lagging follower must not win the election.
    cluster.execute(2, put("x", 1))
    leader = next(r for r in cluster.replicas if r.role == "leader")
    laggard = next(r for r in cluster.replicas if r.role != "leader")
    cluster.net.isolate(laggard.pid, start=cluster.sim.now)
    cluster.execute(leader.pid, put("x", 2), timeout=5000.0)
    cluster.net.heal_all()
    cluster.crash(leader.pid)
    cluster.run(1200.0)
    reader = next(r.pid for r in cluster.replicas
                  if not r.crashed)
    assert cluster.execute(reader, get("x"), timeout=8000.0) == 2


def test_terms_monotonic(cluster):
    cluster.execute(2, put("x", 1))
    leader = next(r for r in cluster.replicas if r.role == "leader")
    term_before = leader.term
    cluster.crash(leader.pid)
    cluster.run(1000.0)
    new_leader = next(
        (r for r in cluster.replicas if not r.crashed and r.role == "leader"),
        None,
    )
    assert new_leader is not None
    assert new_leader.term > term_before
