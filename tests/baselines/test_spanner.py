"""Tests for the Spanner baseline."""

import pytest

from repro.baselines.spanner import SpannerCluster
from repro.objects.kvstore import KVStoreSpec, get, put
from repro.verify import check_linearizable


def build(read_mode="leader", epsilon=2.0, seed=3, **kwargs):
    c = SpannerCluster(KVStoreSpec(), n=5, seed=seed, read_mode=read_mode,
                       epsilon=epsilon, **kwargs)
    c.start()
    c.run(100.0)
    return c


class TestWrites:
    def test_write_read_roundtrip(self):
        c = build()
        assert c.execute(2, put("x", 1)) is None
        assert c.execute(4, get("x")) == 1

    def test_timestamps_strictly_increase(self):
        c = build()
        c.execute_all([(i % 5, put("k", i)) for i in range(8)])
        leader = c.replicas[0]
        stamps = [ts for _, (ts, _) in sorted(leader.log.items())]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == len(stamps)

    def test_commit_wait_grows_with_uncertainty(self):
        waits = {}
        for uncertainty in (1.0, 40.0):
            c = SpannerCluster(
                KVStoreSpec(), n=5, seed=3, read_mode="leader",
                epsilon=2.0, uncertainty=uncertainty,
            )
            c.start()
            c.run(100.0)
            for i in range(5):
                c.execute(0, put("k", i))
            leader = c.replicas[0]
            waits[uncertainty] = sum(leader.commit_waits) / len(
                leader.commit_waits
            )
        # Large uncertainty forces real commit-wait; small one hides inside
        # the replication round trip.
        assert waits[40.0] > waits[1.0] + 20.0

    def test_mixed_workload_linearizable_leader_mode(self):
        c = build()
        ops = [(i % 5, put("k", i)) for i in range(8)]
        ops += [(i % 5, get("k")) for i in range(8)]
        c.execute_all(ops)
        assert check_linearizable(c.spec, c.history(),
                                  partition_by_key=True)


class TestReadOptions:
    def test_leader_mode_reads_are_not_local(self):
        c = build(read_mode="leader")
        c.execute(2, put("x", 1))
        before = c.net.total_sent()
        follower = next(pid for pid in range(5)
                        if c.replicas[pid].omega.leader() != pid)
        c.execute(follower, get("x"))
        assert c.net.total_sent() > before

    def test_now_mode_blocks_without_writes(self):
        c = build(read_mode="now")
        c.execute(2, put("x", 1))
        c.run(100.0)
        future = c.submit(3, get("x"))
        c.run(500.0)
        assert not future.done, "option (b) must block until a later write"
        c.execute(1, put("unblock", 1))
        c.run_until(lambda: future.done, timeout=2000.0)
        assert future.value == 1

    def test_now_mode_is_linearizable(self):
        c = build(read_mode="now")
        futures = []
        for i in range(6):
            futures.append(c.submit(i % 5, put("k", i)))
            futures.append(c.submit((i + 1) % 5, get("k")))
            c.run(30.0)
        c.execute(0, put("fin", 1))  # unblock the last reads
        c.run(2000.0)
        assert all(f.done for f in futures)
        assert check_linearizable(c.spec, c.history(),
                                  partition_by_key=True)

    def test_stale_mode_never_blocks(self):
        c = build(read_mode="stale")
        c.execute(2, put("x", 1))
        c.run(100.0)
        future = c.submit(3, get("x"))
        assert future.done

    def test_stale_mode_can_violate_linearizability(self):
        # Hold back the apply stream to one follower and read from it
        # right after a write committed elsewhere.
        c = build(read_mode="stale", seed=7)
        c.execute(2, put("x", 1))
        c.run(100.0)
        c.net.isolate(4, start=c.sim.now)
        c.execute(0, put("x", 2), timeout=5000.0)
        c.run(5.0)  # strictly after the write's response in real time
        stale = c.submit(4, get("x"))  # completes locally, stale
        assert stale.done
        assert stale.value == 1
        result = check_linearizable(c.spec, c.history(),
                                    partition_by_key=True)
        assert not result, "option (c) staleness must be caught"


def test_rejects_unknown_read_mode():
    with pytest.raises(ValueError):
        build(read_mode="bogus")
