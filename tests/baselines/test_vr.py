"""Tests for the Viewstamped Replication baseline."""

import pytest

from repro.baselines.vr import VRCluster
from repro.objects.kvstore import KVStoreSpec, get, put
from repro.verify import check_linearizable


@pytest.fixture
def cluster():
    c = VRCluster(KVStoreSpec(), n=5, seed=3)
    c.start()
    return c


def test_primary_is_view_mod_n(cluster):
    primary = cluster.primary()
    assert primary is not None
    assert primary.pid == primary.view % cluster.n == 0


def test_write_read_roundtrip(cluster):
    assert cluster.execute(2, put("x", 1)) is None
    assert cluster.execute(4, get("x")) == 1


def test_reads_go_through_primary(cluster):
    cluster.execute(2, put("x", 1))
    before = cluster.net.total_sent()
    cluster.execute(1, get("x"))
    assert cluster.net.total_sent() > before


def test_mixed_workload_linearizable(cluster):
    ops = [(i % 5, put("k", i)) for i in range(8)]
    ops += [(i % 5, get("k")) for i in range(8)]
    cluster.execute_all(ops)
    assert check_linearizable(cluster.spec, cluster.history(),
                              partition_by_key=True)


def test_view_change_on_primary_crash(cluster):
    cluster.execute(2, put("x", 1))
    cluster.crash(0)
    cluster.run(1000.0)
    new_primary = cluster.primary()
    assert new_primary is not None
    assert new_primary.pid == 1
    assert cluster.execute(3, get("x"), timeout=8000.0) == 1


def test_round_robin_cascade(cluster):
    """The paper's critique: with a static schedule, crashing the next
    primaries in id order forces the system through ineffective views."""
    cluster.execute(2, put("x", 1))
    cluster.crash(0)
    cluster.crash(1)
    cluster.run(2500.0)
    primary = cluster.primary()
    assert primary is not None
    assert primary.pid == 2
    assert primary.view >= 2  # cycled past view 1 whose primary is dead
    assert cluster.execute(3, get("x"), timeout=8000.0) == 1


def test_committed_ops_survive_view_change(cluster):
    cluster.execute_all([(i % 5, put(f"k{i}", i)) for i in range(6)])
    cluster.crash(0)
    cluster.run(1200.0)
    for i in range(6):
        assert cluster.execute(2, get(f"k{i}"), timeout=8000.0) == i


def test_logs_agree_across_replicas(cluster):
    cluster.execute_all([(i % 5, put("k", i)) for i in range(10)])
    cluster.run(500.0)
    logs = {tuple(inst.op_id for inst in r.log[:r.commit_num])
            for r in cluster.replicas}
    # All committed prefixes are prefixes of one another.
    longest = max(logs, key=len)
    assert all(longest[:len(log)] == log for log in logs)
