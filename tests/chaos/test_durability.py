"""Durability mode across the chaos stack: generation, arming, verdicts,
shrinking, and artifacts."""

import pytest

from repro.chaos.generator import (
    ScheduleGenerator,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.chaos.nemesis import NemesisRunner, last_disruption
from repro.chaos.shrink import (
    load_artifact,
    logical_faults,
    run_artifact,
    save_artifact,
)
from repro.core.client import ChtCluster
from repro.core.config import ChtConfig
from repro.objects.kvstore import KVStoreSpec
from repro.sim.failures import CrashRestart, DiskFaultWindow, FaultSchedule


class TestGeneration:
    def test_durability_draws_are_strictly_additive(self):
        # The new draws come after every legacy draw, so for the same
        # (seed, index) a durability-on schedule is the durability-off
        # schedule plus crash-restarts/disk-faults — bit-for-bit.
        legacy = ScheduleGenerator(n=5, num_clients=2, seed=3)
        durable = ScheduleGenerator(n=5, num_clients=2, seed=3,
                                    durability=True)
        for index in range(5):
            off = schedule_to_dict(legacy.generate(index))
            on = schedule_to_dict(durable.generate(index))
            assert off["crash_restarts"] == []
            assert off["disk_faults"] == []
            assert on["crash_restarts"], f"schedule {index} has no restart"
            for key, entries in off.items():
                if key not in ("crash_restarts", "disk_faults"):
                    assert on[key] == entries, key

    def test_serialization_roundtrip(self):
        gen = ScheduleGenerator(n=5, num_clients=2, seed=0, durability=True)
        for index in range(3):
            schedule = gen.generate(index)
            data = schedule_to_dict(schedule)
            assert schedule_to_dict(schedule_from_dict(data)) == data

    def test_old_artifacts_without_durability_keys_still_load(self):
        schedule = ScheduleGenerator(n=3, num_clients=1, seed=1).generate(0)
        data = schedule_to_dict(schedule)
        del data["crash_restarts"], data["disk_faults"]
        loaded = schedule_from_dict(data)
        assert loaded.crash_restarts == [] and loaded.disk_faults == []

    def test_last_disruption_covers_durability_faults(self):
        schedule = FaultSchedule(
            crash_restarts=[CrashRestart(pid=0, at=500.0, downtime=300.0)],
            disk_faults=[DiskFaultWindow(pid=1, kind="torn", start=0.0,
                                         end=900.0)],
        )
        assert last_disruption(schedule) == 900.0
        schedule = FaultSchedule(
            crash_restarts=[CrashRestart(pid=0, at=500.0, downtime=600.0)],
        )
        assert last_disruption(schedule) == 1100.0

    def test_durability_faults_are_shrinkable_units(self):
        schedule = FaultSchedule(
            crash_restarts=[CrashRestart(pid=0, at=10.0)],
            disk_faults=[DiskFaultWindow(pid=1, kind="stall", start=0.0,
                                         end=100.0)],
        )
        names = sorted(name for name, _ in logical_faults(schedule))
        assert names == ["crash_restarts", "disk_faults"]


class TestArming:
    def test_disk_fault_requires_a_durable_target(self):
        cluster = ChtCluster(KVStoreSpec(), ChtConfig(n=3), seed=0)
        schedule = FaultSchedule(
            disk_faults=[DiskFaultWindow(pid=0, kind="slow", start=0.0,
                                         end=50.0, low=1.0, high=2.0)]
        )
        with pytest.raises(ValueError, match="durability layer"):
            schedule.arm(cluster.sim, cluster.net, cluster.replicas)

    def test_crash_restart_pid_validated(self):
        cluster = ChtCluster(KVStoreSpec(), ChtConfig(n=3), seed=0,
                             durability=True)
        schedule = FaultSchedule(
            crash_restarts=[CrashRestart(pid=9, at=1.0)]
        )
        with pytest.raises(ValueError, match="unknown process"):
            schedule.arm(cluster.sim, cluster.net, cluster.replicas)

    def test_crash_restart_erases_then_restores(self):
        cluster = ChtCluster(KVStoreSpec(), ChtConfig(n=3), seed=0,
                             durability=True)
        schedule = FaultSchedule(
            crash_restarts=[CrashRestart(pid=2, at=300.0, downtime=100.0)]
        )
        schedule.arm(cluster.sim, cluster.net, cluster.replicas)
        cluster.start()
        cluster.run_until_leader()
        cluster.run_until(lambda: cluster.replicas[2].crashed, 5_000.0)
        cluster.run_until(lambda: not cluster.replicas[2].crashed, 5_000.0)
        assert not cluster.replicas[2].crashed


class TestVerdicts:
    def test_multipaxos_has_no_durability_seam(self):
        with pytest.raises(ValueError, match="multipaxos"):
            NemesisRunner(system="multipaxos", durability=True)

    def test_durable_schedule_passes_on_serial_cht(self):
        gen = ScheduleGenerator(n=5, num_clients=2, seed=0, durability=True)
        runner = NemesisRunner(system="cht", n=5, num_clients=2, seed=0,
                               ops_per_client=4, durability=True)
        result = runner.run(gen.generate(1))
        assert result.ok, result

    def test_sharded_serial_and_parallel_verdicts_match(self):
        schedule = ScheduleGenerator(n=5, num_clients=2, seed=0,
                                     durability=True).generate(1)
        results = []
        for parallel_sim in (False, True):
            runner = NemesisRunner(
                system="sharded", n=5, num_clients=2, seed=0,
                ops_per_client=4, durability=True,
                parallel_sim=parallel_sim,
            )
            result = runner.run(schedule)
            results.append((result.ok, result.kind, result.ops_completed))
        assert results[0] == results[1]
        assert results[0][0], results

    def test_planted_fsync_bug_detected_shrunk_and_replayed(self, tmp_path):
        gen = ScheduleGenerator(n=5, num_clients=2, seed=0, durability=True)
        runner = NemesisRunner(system="cht", n=5, num_clients=2, seed=0,
                               ops_per_client=4, durability=True,
                               bug="skip_promise_fsync")
        result = runner.run(gen.generate(0))
        assert not result.ok
        assert result.kind == "invariant"
        assert "promise regressed" in result.detail

        path = str(tmp_path / "repro.json")
        artifact = save_artifact(path, runner, gen.generate(0), result)
        assert artifact["durability"] is True
        loaded_runner, loaded_schedule, loaded = load_artifact(path)
        assert loaded_runner.durability is True
        assert schedule_to_dict(loaded_schedule) == artifact["schedule"]
        reproduced, replay = run_artifact(path)
        assert reproduced, replay
