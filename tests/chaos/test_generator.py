"""Schedule generation: determinism, structural constraints, serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.generator import (
    ScheduleGenerator,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.chaos.nemesis import NemesisRunner


def test_generator_rejects_tiny_clusters():
    with pytest.raises(ValueError):
        ScheduleGenerator(n=2)


def test_generation_is_deterministic_per_index():
    a = ScheduleGenerator(n=5, num_clients=2, seed=7)
    b = ScheduleGenerator(n=5, num_clients=2, seed=7)
    for index in range(10):
        assert schedule_to_dict(a.generate(index)) == schedule_to_dict(
            b.generate(index)
        )


def test_different_seeds_differ():
    a = ScheduleGenerator(n=5, seed=1).generate(0)
    b = ScheduleGenerator(n=5, seed=2).generate(0)
    assert schedule_to_dict(a) != schedule_to_dict(b)


def test_schedules_are_never_empty():
    generator = ScheduleGenerator(n=3, seed=0)
    assert all(
        generator.generate(i).fault_count() >= 1 for i in range(50)
    )


def _max_concurrent_crashes(schedule):
    ends = {}
    for rec in schedule.recoveries:
        ends.setdefault(rec.pid, []).append(rec.at)
    intervals = []
    for crash in schedule.crashes:
        pid_ends = sorted(ends.get(crash.pid, []))
        end = next((e for e in pid_ends if e >= crash.at), float("inf"))
        intervals.append((crash.at, end))
    return max(
        (
            sum(1 for s, e in intervals if s <= at < e)
            for at, _ in intervals
        ),
        default=0,
    )


def test_majority_correct_with_leader_crash_reservation():
    for n in (3, 5, 7):
        generator = ScheduleGenerator(n=n, num_clients=2, seed=13)
        f_max = (n - 1) // 2
        for index in range(40):
            schedule = generator.generate(index)
            reserved = 1 if schedule.leader_crashes else 0
            assert _max_concurrent_crashes(schedule) + reserved <= f_max


def test_everything_heals_before_horizon():
    horizon = 2000.0
    generator = ScheduleGenerator(n=5, num_clients=2, seed=3, horizon=horizon)
    for index in range(30):
        schedule = generator.generate(index)
        crashed = {c.pid for c in schedule.crashes}
        recovered = {r.pid for r in schedule.recoveries}
        assert crashed == recovered
        for rec in schedule.recoveries:
            assert rec.at <= 0.9 * horizon
        windows = (
            list(schedule.partitions)
            + list(schedule.one_way_partitions)
            + list(schedule.losses)
            + list(schedule.duplications)
            + list(schedule.delay_bursts)
        )
        for window in windows:
            assert window.end <= 0.9 * horizon
        for desync in schedule.desyncs:
            assert desync.end is not None and desync.end <= 0.9 * horizon


def test_serialization_roundtrip():
    generator = ScheduleGenerator(n=5, num_clients=2, seed=11)
    for index in range(20):
        schedule = generator.generate(index)
        data = schedule_to_dict(schedule)
        rebuilt = schedule_from_dict(data)
        assert schedule_to_dict(rebuilt) == data
        assert rebuilt.fault_count() == schedule.fault_count()


@settings(max_examples=8, deadline=None, derandomize=True)
@given(seed=st.integers(0, 10_000), index=st.integers(0, 100))
def test_healed_schedules_reelect_leader_and_drain_ops(seed, index):
    """Any generated schedule, once healed, lets the cluster re-elect a
    leader and drain every pending operation (the nemesis's ok verdict
    asserts exactly that, plus invariants and linearizability)."""
    generator = ScheduleGenerator(n=3, num_clients=1, seed=seed)
    runner = NemesisRunner(
        system="cht", n=3, num_clients=1, seed=seed, ops_per_client=3
    )
    result = runner.run(generator.generate(index))
    assert result.ok, result


def test_same_pid_desyncs_never_overlap_catch_up_windows():
    """Regression: n=3 seed=0 schedule 53 once generated two desyncs of
    pid 0 whose active-plus-catch-up windows overlapped; the second's
    resync appended a future clock segment and the first's jump then
    violated segment time order.  The generator must reject a desync
    that begins inside an earlier same-pid desync's window (end plus
    ~1.1x the jump of crawl-back)."""
    for n, seed in ((3, 0), (5, 0), (3, 7)):
        generator = ScheduleGenerator(n=n, num_clients=2, seed=seed)
        for index in range(80):
            desyncs = generator.generate(index).desyncs
            for i, a in enumerate(desyncs):
                for b in desyncs[i + 1:]:
                    if a.pid != b.pid:
                        continue
                    clear_a = a.end + 1.1 * a.jump
                    clear_b = b.end + 1.1 * b.jump
                    assert b.start >= clear_a or a.start >= clear_b, (
                        n, seed, index, a, b
                    )


def test_desync_rejection_preserves_other_schedules():
    """Dropping an overlapping desync consumes the same rng draws, so
    schedules without same-pid overlaps are untouched (the soak corpus
    stays comparable across the fix)."""
    schedule = ScheduleGenerator(n=3, num_clients=2, seed=0).generate(53)
    # The index that used to crash keeps exactly one of its two pid-0
    # desyncs...
    assert len(schedule.desyncs) == 1
    assert schedule.desyncs[0].pid == 0
    # ...and the nemesis now survives it end to end.
    runner = NemesisRunner(system="cht", n=3, num_clients=2,
                           ops_per_client=3)
    result = runner.run(schedule)
    assert result.ok, result
