"""The leaseholder tier across the chaos stack: generation, arming,
verdicts, the planted stale-read bug, and repro artifacts."""

import pytest

from repro.chaos.generator import ScheduleGenerator, schedule_to_dict
from repro.chaos.nemesis import NemesisRunner
from repro.chaos.shrink import load_artifact, run_artifact, save_artifact, shrink
from repro.core.client import ChtCluster
from repro.core.config import ChtConfig
from repro.objects.kvstore import KVStoreSpec
from repro.sim.failures import Crash, FaultSchedule, Recover


class TestGeneration:
    def test_leaseholder_draws_are_strictly_additive(self):
        # New draws come after every legacy + durability draw: for the
        # same (seed, index) a leaseholder-on schedule is the old
        # schedule plus leaseholder faults — every legacy entry
        # bit-identical.
        legacy = ScheduleGenerator(n=5, num_clients=2, seed=3)
        tiered = ScheduleGenerator(n=5, num_clients=2, seed=3,
                                   num_leaseholders=2)
        lh_pids = {7, 8}  # n + num_clients ..
        for index in range(5):
            off = schedule_to_dict(legacy.generate(index))
            on = schedule_to_dict(tiered.generate(index))
            for key, entries in off.items():
                if key in ("crashes", "recoveries", "partitions"):
                    # Legacy entries are a prefix of the tiered list.
                    assert on[key][: len(entries)] == entries, key
                else:
                    assert on[key] == entries, key
            extra_crash_pids = {
                c["pid"] for c in on["crashes"][len(off["crashes"]):]
            }
            assert extra_crash_pids <= lh_pids

    def test_leaseholder_partition_isolates_holder_from_all_replicas(self):
        generator = ScheduleGenerator(n=5, num_clients=2, seed=0,
                                      num_leaseholders=2)
        saw_partition = False
        for index in range(10):
            schedule = generator.generate(index)
            for window in schedule.partitions:
                if any(pid >= 7 for pid in window.group_a):
                    saw_partition = True
                    assert window.group_b == frozenset(range(5))
                    # The co-partitioned client (if any) prefers the
                    # isolated holder: client i reads holder i mod L.
                    holders = {p for p in window.group_a if p >= 7}
                    clients = {p for p in window.group_a if 5 <= p < 7}
                    for client_pid in clients:
                        assert (client_pid - 5) % 2 == min(holders) - 7
        assert saw_partition, "no leaseholder partition in 10 schedules"

    def test_leaseholder_base_override_for_sharded_groups(self):
        generator = ScheduleGenerator(n=5, num_clients=2, seed=0,
                                      num_leaseholders=2,
                                      leaseholder_base=8)
        pids = set()
        for index in range(10):
            schedule = generator.generate(index)
            pids |= {c.pid for c in schedule.crashes if c.pid >= 7}
            for window in schedule.partitions:
                pids |= {p for p in window.group_a if p >= 7}
        assert pids, "no leaseholder faults drawn"
        assert pids <= {8, 9}, (
            f"sharded leaseholder faults must skip the coordinator "
            f"session pid 7; drew {sorted(pids)}"
        )


class TestArming:
    def test_leaseholder_crash_faults_arm_and_fire(self):
        cluster = ChtCluster(KVStoreSpec(), ChtConfig(n=3), seed=0,
                             num_clients=1, num_leaseholders=2)
        schedule = FaultSchedule(
            crashes=[Crash(pid=4, at=300.0)],
            recoveries=[Recover(pid=4, at=600.0)],
        )
        schedule.arm(
            cluster.sim, cluster.net,
            list(cluster.replicas) + list(cluster.clients)
            + list(cluster.leaseholders),
        )
        cluster.start()
        cluster.run_until(lambda: cluster.leaseholders[0].crashed, 5_000.0)
        assert cluster.leaseholders[0].crashed
        cluster.run_until(
            lambda: not cluster.leaseholders[0].crashed, 5_000.0
        )
        assert not cluster.leaseholders[0].crashed

    def test_multipaxos_rejects_the_tier(self):
        with pytest.raises(ValueError, match="lease machinery"):
            NemesisRunner(system="multipaxos", num_leaseholders=2)


class TestVerdicts:
    def test_leaseholder_schedules_pass_on_serial_cht(self):
        generator = ScheduleGenerator(n=3, num_clients=2, seed=5,
                                      num_leaseholders=2)
        runner = NemesisRunner(system="cht", n=3, num_clients=2, seed=5,
                               ops_per_client=4, num_leaseholders=2)
        for index in range(2):
            result = runner.run(generator.generate(index))
            assert result.ok, f"schedule {index}: {result}"

    def test_sharded_serial_and_parallel_verdicts_match(self):
        schedule = ScheduleGenerator(n=5, num_clients=2, seed=0,
                                     num_leaseholders=2,
                                     leaseholder_base=8).generate(1)
        results = []
        for parallel_sim in (False, True):
            runner = NemesisRunner(
                system="sharded", n=5, num_clients=2, seed=0,
                ops_per_client=4, num_leaseholders=2,
                parallel_sim=parallel_sim,
            )
            result = runner.run(schedule)
            results.append((result.ok, result.kind, result.ops_completed))
        assert results[0] == results[1]
        assert results[0][0], results


class TestPlantedBug:
    def test_skip_lease_shrink_detected_shrunk_and_replayed(self, tmp_path):
        # The planted bug drops the lease-expiry wait before committing
        # past an unresponsive holder; a partitioned holder's still-valid
        # lease then serves a stale local read, and the verdict is a
        # linearizability violation — not a crash, not an invariant trip.
        generator = ScheduleGenerator(n=5, num_clients=2, seed=0,
                                      num_leaseholders=2)
        runner = NemesisRunner(system="cht", n=5, num_clients=2, seed=0,
                               ops_per_client=6, num_leaseholders=2,
                               bug="skip_lease_shrink")
        schedule = generator.generate(3)
        result = runner.run(schedule)
        assert not result.ok
        assert result.kind == "linearizability", result

        small, small_result = shrink(runner, schedule, result, budget=60)
        assert small_result.kind == "linearizability"
        assert small.fault_count() <= schedule.fault_count()

        path = str(tmp_path / "repro.json")
        artifact = save_artifact(path, runner, small, small_result)
        assert artifact["num_leaseholders"] == 2
        loaded_runner, loaded_schedule, _ = load_artifact(path)
        assert loaded_runner.num_leaseholders == 2
        assert schedule_to_dict(loaded_schedule) == artifact["schedule"]
        reproduced, replay = run_artifact(path)
        assert reproduced, replay

    def test_unbugged_run_of_the_same_cell_is_clean(self):
        generator = ScheduleGenerator(n=5, num_clients=2, seed=0,
                                      num_leaseholders=2)
        runner = NemesisRunner(system="cht", n=5, num_clients=2, seed=0,
                               ops_per_client=6, num_leaseholders=2)
        result = runner.run(generator.generate(3))
        assert result.ok, result


class TestArtifacts:
    def test_old_artifacts_without_the_key_default_to_zero(self, tmp_path):
        generator = ScheduleGenerator(n=3, num_clients=1, seed=1)
        runner = NemesisRunner(system="cht", n=3, num_clients=1, seed=1,
                               ops_per_client=3)
        schedule = generator.generate(0)
        result = runner.run(schedule)
        path = str(tmp_path / "repro.json")
        artifact = save_artifact(path, runner, schedule, result)
        import json
        data = json.loads(open(path).read())
        del data["num_leaseholders"]
        with open(path, "w") as fh:
            json.dump(data, fh)
        loaded_runner, _, _ = load_artifact(path)
        assert loaded_runner.num_leaseholders == 0
