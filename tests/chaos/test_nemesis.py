"""The nemesis runner: verdicts, determinism, and the mini soak."""

import pytest

from repro.chaos.generator import ScheduleGenerator
from repro.chaos.nemesis import SYSTEMS, NemesisRunner, last_disruption
from repro.sim.failures import (
    ClockDesync,
    Crash,
    DelayBurstWindow,
    FaultSchedule,
    LeaderCrash,
    LossWindow,
    PartitionWindow,
    Recover,
)


def test_unknown_system_rejected():
    with pytest.raises(ValueError, match="unknown system"):
        NemesisRunner(system="raft")


def test_last_disruption_covers_every_fault_family():
    schedule = FaultSchedule(
        crashes=[Crash(pid=0, at=100.0)],
        recoveries=[Recover(pid=0, at=300.0)],
        leader_crashes=[LeaderCrash(at=200.0, downtime=150.0)],
        partitions=[
            PartitionWindow(frozenset({0}), frozenset({1, 2}), 50.0, 400.0)
        ],
        losses=[LossWindow(start=0.0, end=250.0, prob=0.2)],
        delay_bursts=[DelayBurstWindow(start=0.0, end=350.0, low=5.0, high=9.0)],
    )
    assert last_disruption(schedule) == 400.0
    # A resyncing clock crawls back for ~1.1x its jump past the window end.
    schedule = FaultSchedule(
        desyncs=[ClockDesync(pid=1, start=100.0, jump=50.0, end=200.0)]
    )
    assert last_disruption(schedule) == pytest.approx(200.0 + 1.1 * 50.0)
    # An unbounded partition counts from its start.
    schedule = FaultSchedule(
        partitions=[PartitionWindow(frozenset({0}), frozenset({1, 2}), 70.0)]
    )
    assert last_disruption(schedule) == 70.0


def test_empty_schedule_run_is_clean():
    runner = NemesisRunner(system="cht", n=3, num_clients=1, ops_per_client=3)
    result = runner.run(FaultSchedule())
    assert result.ok
    assert result.ops_completed == 3


def test_mini_soak_passes_for_every_system():
    for system in SYSTEMS:
        generator = ScheduleGenerator(n=3, num_clients=1, seed=5)
        runner = NemesisRunner(
            system=system, n=3, num_clients=1, seed=5, ops_per_client=3
        )
        for index in range(3):
            result = runner.run(generator.generate(index))
            assert result.ok, f"{system} schedule {index}: {result}"


def test_runs_are_deterministic():
    schedule = ScheduleGenerator(n=3, num_clients=1, seed=9).generate(1)
    runner = NemesisRunner(system="cht", n=3, num_clients=1, seed=9,
                           ops_per_client=3)
    first = runner.run(schedule)
    second = runner.run(schedule)
    assert (first.ok, first.kind, first.ops_completed) == (
        second.ok, second.kind, second.ops_completed
    )


def test_paxos_phase2_survives_ballot_reset_under_partition():
    """Regression: the nemesis found (seed 3, schedule 5, shrunk to this
    one partition) that a failing phase-2 exchange reset the ballot and a
    sibling in-flight exchange then tripped a bare assert.  The op must
    instead return to pending and the run stay clean."""
    schedule = FaultSchedule(
        partitions=[
            PartitionWindow(
                frozenset({1, 3, 4}), frozenset({0, 2}),
                start=1009.27, end=1103.91,
            )
        ]
    )
    runner = NemesisRunner(system="multipaxos", n=5, num_clients=2, seed=3)
    result = runner.run(schedule)
    assert result.ok, result


def test_planted_bug_produces_failing_verdict():
    # skip_reply_cache: lost replies can never be re-answered, so some
    # retransmitted op hangs forever -> a liveness failure, found within
    # the first few schedules.
    runner = NemesisRunner(system="cht", n=5, num_clients=2, seed=0,
                           bug="skip_reply_cache")
    generator = ScheduleGenerator(n=5, num_clients=2, seed=0)
    kinds = []
    for index in range(3):
        result = runner.run(generator.generate(index))
        if not result.ok:
            kinds.append(result.kind)
            break
    assert kinds == ["liveness"]


def test_tiny_verify_budget_yields_undecided_verdict():
    # A one-configuration budget cannot decide any non-trivial history:
    # the verdict must be the structured "undecided" kind, not a crash
    # and not a (wrong) linearizability failure.
    runner = NemesisRunner(system="cht", n=3, num_clients=1,
                           ops_per_client=3, max_configurations=1)
    result = runner.run(FaultSchedule())
    assert not result.ok
    assert result.kind == "undecided"
    assert "max_configurations=1" in result.detail
