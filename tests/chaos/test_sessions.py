"""Exactly-once client sessions: reply cache, retransmission, leader crashes."""

import pytest

from repro.baselines.multipaxos import PaxosCluster
from repro.core.client import ChtCluster
from repro.core.config import ChtConfig
from repro.core.messages import ClientReply, ClientRequest
from repro.objects.kvstore import KVStoreSpec, get, increment, put


def cht_cluster(seed=2, n=3, num_clients=1):
    cluster = ChtCluster(
        KVStoreSpec(), ChtConfig(n=n), seed=seed, num_clients=num_clients
    )
    cluster.start()
    return cluster


def test_session_op_completes_and_is_visible():
    cluster = cht_cluster()
    cluster.run_until_leader()
    future = cluster.clients[0].submit(put("x", 7))
    assert cluster.run_until(lambda: future.done, timeout=5_000.0)
    assert cluster.execute(0, get("x")) == 7


def test_retransmissions_apply_exactly_once_cht():
    cluster = cht_cluster()
    cluster.run_until_leader()
    # Drop every reply for a while: the session retransmits (rotating
    # replicas); the reply cache must answer without re-applying.
    cluster.net.drop_rule = (
        lambda src, dst, msg, now: isinstance(msg, ClientReply) and now < 400.0
    )
    future = cluster.clients[0].submit(increment("x"))
    assert cluster.run_until(lambda: future.done, timeout=10_000.0)
    assert future.value == 1  # applied once despite many retransmissions
    assert cluster.execute(0, get("x")) == 1


def test_rmw_survives_leader_crash_cht():
    cluster = cht_cluster(seed=3)
    leader = cluster.run_until_leader()
    future = cluster.clients[0].submit(increment("x"))
    leader.crash()  # before the request can commit
    assert cluster.run_until(lambda: future.done, timeout=30_000.0)
    assert future.value == 1
    survivor = cluster.alive()[0].pid
    assert cluster.execute(survivor, get("x")) == 1


def test_rmw_survives_leader_crash_multipaxos():
    cluster = PaxosCluster(KVStoreSpec(), n=3, seed=3, num_clients=1)
    cluster.start()
    cluster.run(200.0)  # let omega settle on a leader
    leader_pid = cluster.replicas[0].omega.leader()
    future = cluster.clients[0].submit(increment("x"))
    cluster.replicas[leader_pid].crash()
    assert cluster.run_until(lambda: future.done, timeout=30_000.0)
    # Retransmission can reach two leaderships; session dedupe must keep
    # the second occurrence a no-op.
    assert future.value == 1
    survivor = next(r for r in cluster.replicas if not r.crashed)
    assert cluster.execute(survivor.pid, get("x")) == 1


def test_reply_cache_answers_duplicate_without_reapplying():
    cluster = cht_cluster()
    leader = cluster.run_until_leader()
    session = cluster.clients[0]
    future = session.submit(increment("x"))
    assert cluster.run_until(lambda: future.done, timeout=5_000.0)
    cluster.run(50.0)  # drain in-flight retransmissions and their replies
    before = cluster.net.messages_sent["ClientReply"]
    # Replay the completed request straight at the leader.
    cluster.net.send(
        session.pid, leader.pid, ClientRequest(session.pid, 1, increment("x"))
    )
    cluster.run(100.0)
    assert cluster.net.messages_sent["ClientReply"] == before + 1
    assert cluster.execute(0, get("x")) == 1  # not applied twice


def test_stale_duplicate_is_dropped():
    cluster = cht_cluster()
    leader = cluster.run_until_leader()
    session = cluster.clients[0]
    for value in (1, 2):
        future = session.submit(put("x", value))
        assert cluster.run_until(lambda: future.done, timeout=5_000.0)
    cluster.run(50.0)  # drain in-flight retransmissions and their replies
    before = cluster.net.messages_sent["ClientReply"]
    # Replay seq 1 after seq 2 completed: cache holds only the latest
    # entry, so the stale duplicate gets no reply (and no re-apply).
    cluster.net.send(
        session.pid, leader.pid, ClientRequest(session.pid, 1, put("x", 1))
    )
    cluster.run(100.0)
    assert cluster.net.messages_sent["ClientReply"] == before
    assert cluster.execute(0, get("x")) == 2


def test_one_outstanding_rmw_enforced():
    cluster = cht_cluster()
    cluster.run_until_leader()
    session = cluster.clients[0]
    session.submit(increment("x"))
    with pytest.raises(RuntimeError, match="outstanding RMW"):
        session.submit(increment("x"))


def test_session_reads_route_through_replicas():
    cluster = cht_cluster()
    cluster.run_until_leader()
    future = cluster.clients[0].submit(put("x", 5))
    assert cluster.run_until(lambda: future.done, timeout=5_000.0)
    read_future = cluster.clients[0].submit(get("x"))
    assert cluster.run_until(lambda: read_future.done, timeout=5_000.0)
    assert read_future.value == 5


def test_session_pid_must_lie_above_replicas():
    cluster = cht_cluster()
    from repro.core.client import ClientSession

    with pytest.raises(ValueError):
        ClientSession(
            1,
            cluster.sim,
            cluster.net,
            cluster.clocks,
            cluster.spec,
            cluster.config.n,
            cluster.stats,
            retry_period=20.0,
        )


def test_session_history_feeds_linearizability_checker():
    from repro.verify.linearizability import check_linearizable

    cluster = cht_cluster()
    cluster.run_until_leader()
    for op in (put("x", 1), increment("x"), get("x")):
        future = cluster.clients[0].submit(op)
        assert cluster.run_until(lambda: future.done, timeout=5_000.0)
    result = check_linearizable(
        cluster.spec, cluster.history(), partition_by_key=True
    )
    assert result.ok
