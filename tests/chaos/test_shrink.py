"""Counterexample shrinking and repro artifacts, end to end."""

import json

from repro.chaos.cli import main
from repro.chaos.generator import ScheduleGenerator, schedule_to_dict
from repro.chaos.nemesis import NemesisRunner
from repro.chaos.shrink import (
    logical_faults,
    run_artifact,
    save_artifact,
    shrink,
)
from repro.sim.failures import Crash, FaultSchedule, LossWindow, Recover


def test_logical_faults_pair_crash_with_recovery():
    schedule = FaultSchedule(
        crashes=[Crash(pid=1, at=10.0), Crash(pid=2, at=50.0)],
        recoveries=[Recover(pid=1, at=30.0), Recover(pid=2, at=90.0),
                    Recover(pid=0, at=5.0)],
        losses=[LossWindow(start=0.0, end=40.0, prob=0.3)],
    )
    units = logical_faults(schedule)
    paired = [entries for name, entries in units if name == "crashes"]
    assert sorted(len(e) for e in paired) == [2, 2]
    for entries in paired:
        crash, recover = entries
        assert crash.pid == recover.pid and recover.at >= crash.at
    # The unpaired recovery and the loss window are their own units.
    assert ("recoveries", (Recover(pid=0, at=5.0),)) in units
    assert len(units) == 4


def test_shrink_respects_zero_budget():
    runner = NemesisRunner(system="cht", n=3, num_clients=1, ops_per_client=2)
    schedule = ScheduleGenerator(n=3, num_clients=1).generate(0)
    failure_stub = runner.run(FaultSchedule())  # ok result; kind None
    small, result = shrink(runner, schedule, failure_stub, budget=0)
    assert schedule_to_dict(small) == schedule_to_dict(schedule)
    assert result is failure_stub


def _first_failure(runner, generator, limit=5):
    for index in range(limit):
        schedule = generator.generate(index)
        result = runner.run(schedule)
        if not result.ok:
            return schedule, result
    raise AssertionError("planted bug was not caught")


def test_planted_bug_shrinks_small_and_reproduces(tmp_path):
    runner = NemesisRunner(system="cht", n=5, num_clients=2, seed=0,
                           bug="skip_reply_cache")
    generator = ScheduleGenerator(n=5, num_clients=2, seed=0)
    schedule, failure = _first_failure(runner, generator)

    small, small_result = shrink(runner, schedule, failure, budget=150)
    assert not small_result.ok and small_result.kind == failure.kind
    assert len(logical_faults(small)) <= 5
    assert small.fault_count() <= schedule.fault_count()

    path = str(tmp_path / "repro.json")
    artifact = save_artifact(path, runner, small, small_result)
    assert artifact["bug"] == "skip_reply_cache"
    assert artifact["command"].endswith(f"repro {path}")
    on_disk = json.loads(open(path).read())
    assert on_disk["schedule"] == schedule_to_dict(small)

    reproduced, replay = run_artifact(path)
    assert reproduced and replay.kind == failure.kind

    # The CLI replay agrees: exit 0 iff the recorded failure reproduces.
    assert main(["repro", path]) == 0


def test_artifact_of_passing_schedule_does_not_reproduce(tmp_path):
    runner = NemesisRunner(system="cht", n=3, num_clients=1, ops_per_client=2)
    schedule = FaultSchedule(losses=[LossWindow(0.0, 100.0, 0.2)])
    failing = runner.run(schedule)
    assert failing.ok
    path = str(tmp_path / "clean.json")
    # Hand-craft an artifact claiming a liveness failure that is not there.
    from repro.chaos.nemesis import NemesisResult

    save_artifact(path, runner, schedule,
                  NemesisResult(False, "liveness", "fabricated"))
    reproduced, result = run_artifact(path)
    assert not reproduced and result.ok
    assert main(["repro", path]) == 1


def test_soak_cli_passes_clean(capsys):
    code = main([
        "soak", "--schedules", "2", "--systems", "cht", "--n", "3",
        "--clients", "1", "--ops-per-client", "2", "--seed", "4",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "2 schedules passed" in out
    # The summary reports workload volume, not just schedule count:
    # 2 schedules x 1 client x 2 ops = 4 checked client operations.
    assert "soak passed: 2 schedules, 4 client ops" in out


def test_verdicts_carry_metrics_snapshots():
    runner = NemesisRunner(system="cht", n=3, num_clients=1, ops_per_client=2)
    result = runner.run(FaultSchedule())
    assert result.ok
    assert result.metrics is not None
    assert result.metrics["messages"]["total_sent"] > 0
    assert any(
        name.startswith("commits_total")
        for name in result.metrics["counters"]
    )
    # Opting out must also work (and then verdicts carry nothing).
    bare = NemesisRunner(
        system="cht", n=3, num_clients=1, ops_per_client=2, obs=False
    )
    assert bare.run(FaultSchedule()).metrics is None


def test_artifact_references_metrics_sidecar(tmp_path):
    from repro.chaos.nemesis import NemesisResult

    runner = NemesisRunner(system="cht", n=3, num_clients=1, ops_per_client=2)
    schedule = FaultSchedule()
    result = runner.run(schedule)
    path = str(tmp_path / "repro.json")
    failure = NemesisResult(
        False, "liveness", "fabricated", metrics=result.metrics
    )
    artifact = save_artifact(path, runner, schedule, failure)
    metrics_path = str(tmp_path / "repro.metrics.json")
    assert artifact["metrics_path"] == metrics_path
    assert json.loads(open(path).read())["metrics_path"] == metrics_path
    sidecar = json.loads(open(metrics_path).read())
    assert sidecar == result.metrics

    # Without a snapshot the artifact records that explicitly.
    bare_path = str(tmp_path / "bare.json")
    bare = save_artifact(
        bare_path, runner, schedule,
        NemesisResult(False, "liveness", "fabricated"),
    )
    assert bare["metrics_path"] is None


def test_artifact_round_trips_sharded_parameters(tmp_path):
    from repro.chaos.nemesis import NemesisResult
    from repro.chaos.shrink import load_artifact

    runner = NemesisRunner(system="sharded", n=3, num_clients=2,
                           ops_per_client=2, groups=4, handoffs=3)
    schedule = FaultSchedule(losses=[LossWindow(0.0, 100.0, 0.2)])
    path = str(tmp_path / "sharded.json")
    artifact = save_artifact(path, runner, schedule,
                             NemesisResult(False, "liveness", "fabricated"))
    assert artifact["groups"] == 4 and artifact["handoffs"] == 3
    rebuilt, _, _ = load_artifact(path)
    assert rebuilt.system == "sharded"
    assert rebuilt.groups == 4 and rebuilt.handoffs == 3

    # Pre-sharding artifacts (no groups/handoffs keys) still load.
    data = json.loads(open(path).read())
    del data["groups"], data["handoffs"]
    legacy = str(tmp_path / "legacy.json")
    with open(legacy, "w") as fh:
        json.dump(data, fh)
    rebuilt, _, _ = load_artifact(legacy)
    assert rebuilt.groups == 2 and rebuilt.handoffs == 1


def test_sharded_soak_cli_passes_clean(capsys):
    code = main([
        "soak", "--schedules", "2", "--systems", "sharded", "--n", "3",
        "--clients", "1", "--ops-per-client", "2", "--seed", "4",
        "--groups", "2", "--handoffs", "1", "--workers", "1",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "sharded: 2 schedules passed" in out
