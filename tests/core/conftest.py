"""Shared fixtures for the CHT algorithm tests."""

import pytest

from repro.core.client import ChtCluster
from repro.core.config import ChtConfig
from repro.objects.kvstore import KVStoreSpec
from repro.objects.register import RegisterSpec


@pytest.fixture
def kv_cluster():
    """A started 5-process KV cluster with a stable leader."""
    cluster = ChtCluster(KVStoreSpec(), ChtConfig(n=5), seed=2)
    cluster.start()
    cluster.run_until_leader()
    return cluster


@pytest.fixture
def register_cluster():
    cluster = ChtCluster(RegisterSpec(initial=0), ChtConfig(n=5), seed=2)
    cluster.start()
    cluster.run_until_leader()
    return cluster


def make_cluster(spec=None, config=None, **kwargs):
    cluster = ChtCluster(spec or KVStoreSpec(), config or ChtConfig(n=5),
                         **kwargs)
    cluster.start()
    return cluster
