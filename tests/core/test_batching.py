"""The leader's batch accumulation window (``config.batch_window``).

With the window at 0 the leader proposes as soon as any submission is
queued; with a positive window it holds the queue for up to the window
after the *first* submission of a batch arrives, so a burst lands in one
DoOps.  Fewer batches for the same operations means fewer Prepare/ack/
Commit exchanges — visible both in the leader's commit log (batch sizes
grow) and in the obs ``messages_per_op`` timeline (messages per
committed op drop).
"""

from repro.core.client import ChtCluster
from repro.core.config import ChtConfig
from repro.objects.kvstore import KVStoreSpec, put
from repro.obs.timeline import messages_per_op

ROUNDS = 12


def _run_bursty(batch_window: float):
    """Every round, all five replicas submit one RMW within a burst."""
    cluster = ChtCluster(
        KVStoreSpec(),
        ChtConfig(n=5, batch_window=batch_window),
        seed=7,
        obs=True,
    )
    cluster.start()
    cluster.run_until_leader()
    futures = []
    for r in range(ROUNDS):
        for pid in range(5):
            futures.append(cluster.submit(pid, put(f"k{pid}", r)))
        cluster.run(150.0)
    cluster.run_until(lambda: all(f.done for f in futures), timeout=60_000.0)
    assert all(f.done for f in futures)
    leader = cluster.leader()
    assert leader is not None
    # Skip the tenure-opening estimate batch; the liveness NoOp rides the
    # normal queue (merging into the first windowed batch) and counts.
    sizes = [rec.size for rec in leader.commit_log[1:]]
    ratios = messages_per_op(cluster.obs)
    assert ratios is not None
    return sizes, ratios


def test_batch_window_grows_batches_and_cuts_messages_per_op():
    sizes_off, ratios_off = _run_bursty(0.0)
    sizes_on, ratios_on = _run_bursty(40.0)

    # Same operations committed either way (5 puts x ROUNDS + the NoOp).
    assert sum(sizes_off) == sum(sizes_on) == 5 * ROUNDS + 1

    mean_off = sum(sizes_off) / len(sizes_off)
    mean_on = sum(sizes_on) / len(sizes_on)
    # The window turns each burst into (nearly) one batch; without it the
    # leader commits its own submission before the forwarded ones arrive.
    assert mean_on >= 2 * mean_off, (sizes_off, sizes_on)
    assert max(sizes_on) >= 5

    # Fewer batches => fewer Prepare/ack/Commit rounds per committed op.
    assert len(sizes_on) < len(sizes_off)
    assert ratios_on["per_op"] < ratios_off["per_op"], (ratios_off, ratios_on)


def test_zero_window_drains_immediately():
    """batch_window=0 keeps the historical propose-at-once behavior."""
    cluster = ChtCluster(KVStoreSpec(), ChtConfig(n=5), seed=3)
    cluster.start()
    leader = cluster.run_until_leader()
    t0 = cluster.sim.now
    future = cluster.submit(leader.pid, put("x", 1))
    cluster.run_until(lambda: future.done, timeout=5_000.0)
    assert future.done
    # One delta to Prepare, one back to ack, commit: well under 10 RTTs.
    assert cluster.sim.now - t0 < 100.0


def test_window_bounds_added_latency():
    """An op never waits more than ~the window plus the usual commit."""
    cluster = ChtCluster(
        KVStoreSpec(), ChtConfig(n=5, batch_window=50.0), seed=3
    )
    cluster.start()
    leader = cluster.run_until_leader()
    t0 = cluster.sim.now
    future = cluster.submit(leader.pid, put("x", 1))
    cluster.run_until(lambda: future.done, timeout=5_000.0)
    assert future.done
    elapsed = cluster.sim.now - t0
    assert elapsed >= 50.0  # the window really held the batch
    assert elapsed < 250.0  # but did not stall it


def test_negative_max_batch_size_rejected():
    import pytest
    with pytest.raises(ValueError, match="max_batch_size"):
        ChtConfig(max_batch_size=-1)


def test_batch_cap_splits_bursts_and_loses_nothing():
    """max_batch_size caps every committed batch; excess submissions stay
    queued and commit later in op-id order, so the same operations land
    either way — just across more batches."""
    def run(cap):
        cluster = ChtCluster(
            KVStoreSpec(),
            ChtConfig(n=3, max_batch_size=cap, batch_window=40.0),
            seed=7,
        )
        cluster.start()
        cluster.run_until_leader()
        futures = [
            cluster.submit(pid, put(f"k{pid}-{r}", r))
            for r in range(4) for pid in range(3)
        ]
        cluster.run_until(
            lambda: all(f.done for f in futures), timeout=60_000.0
        )
        assert all(f.done for f in futures)
        leader = cluster.leader()
        return [rec.size for rec in leader.commit_log[1:]]

    capped = run(2)
    unbounded = run(0)
    assert sum(capped) == sum(unbounded) == 12 + 1  # + liveness NoOp
    assert max(capped) <= 2
    assert max(unbounded) > 2
    assert len(capped) > len(unbounded)
