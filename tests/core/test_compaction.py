"""Tests for log compaction and snapshot transfer."""

import pytest

from repro.core.client import ChtCluster
from repro.core.config import ChtConfig
from repro.objects.kvstore import KVStoreSpec, get, increment, put
from repro.objects.spec import COMPACTED
from repro.verify import check_linearizable


def compacting_cluster(seed=3, interval=5, retain=2, n=5):
    config = ChtConfig(n=n, compaction_interval=interval,
                       compaction_retain=retain)
    cluster = ChtCluster(KVStoreSpec(), config, seed=seed)
    cluster.start()
    cluster.run_until_leader()
    return cluster


class TestPruning:
    def test_log_is_bounded(self):
        cluster = compacting_cluster()
        for i in range(30):
            cluster.execute(i % 5, put(f"k{i % 3}", i))
        cluster.run(500.0)
        for replica in cluster.replicas:
            assert len(replica.batches) <= (
                cluster.config.compaction_interval
                + cluster.config.compaction_retain + 2
            )
            assert replica.pruned_upto > 0

    def test_disabled_compaction_keeps_everything(self):
        config = ChtConfig(n=5, compaction_interval=0)
        cluster = ChtCluster(KVStoreSpec(), config, seed=3)
        cluster.start()
        cluster.run_until_leader()
        for i in range(20):
            cluster.execute(i % 5, put("k", i))
        cluster.run(500.0)
        leader = cluster.leader()
        assert leader.pruned_upto == 0
        assert min(leader.batches) == 1

    def test_state_survives_pruning(self):
        cluster = compacting_cluster()
        for i in range(25):
            cluster.execute(i % 5, increment("total"))
        assert cluster.execute(2, get("total")) == 25

    def test_recent_batches_are_retained(self):
        cluster = compacting_cluster()
        for i in range(25):
            cluster.execute(0, put("k", i))
        leader = cluster.leader()
        assert leader.applied_upto in leader.batches or (
            leader.applied_upto <= leader.pruned_upto
        )
        # The retained window sits right below the applied prefix.
        assert max(leader.batches) >= leader.applied_upto - 1


class TestSnapshotTransfer:
    def test_laggard_catches_up_via_snapshot(self):
        cluster = compacting_cluster()
        leader = cluster.leader()
        victim = max(r.pid for r in cluster.replicas if r.pid != leader.pid)
        cluster.net.isolate(victim, start=cluster.sim.now)
        for i in range(30):
            cluster.execute(leader.pid, put("k", i), timeout=20_000.0)
        # The victim is now far behind the pruning point.
        assert leader.pruned_upto > cluster.replicas[victim].applied_upto
        cluster.net.heal_all()
        cluster.run_until(
            lambda: cluster.replicas[victim].applied_upto
            >= leader.applied_upto,
            timeout=20_000.0,
        )
        assert cluster.replicas[victim].state == leader.state

    def test_laggard_reads_fresh_after_snapshot(self):
        cluster = compacting_cluster()
        leader = cluster.leader()
        victim = max(r.pid for r in cluster.replicas if r.pid != leader.pid)
        cluster.net.isolate(victim, start=cluster.sim.now)
        for i in range(30):
            cluster.execute(leader.pid, put("k", i), timeout=20_000.0)
        cluster.net.heal_all()
        assert cluster.execute(victim, get("k"), timeout=20_000.0) == 29

    def test_new_leader_initializes_from_snapshot(self):
        cluster = compacting_cluster()
        leader = cluster.leader()
        successor = next(
            r.pid for r in cluster.replicas if r.pid != leader.pid
        )
        cluster.net.isolate(successor, start=cluster.sim.now)
        for i in range(30):
            cluster.execute(leader.pid, put("k", i), timeout=20_000.0)
        cluster.net.heal_all()
        cluster.run(50.0)
        cluster.crash(leader.pid)
        cluster.run_until_leader(timeout=20_000.0)
        reader = next(r.pid for r in cluster.alive())
        assert cluster.execute(reader, get("k"), timeout=20_000.0) == 29
        assert cluster.execute(reader, put("k", 99),
                               timeout=20_000.0) is None

    def test_history_linearizable_with_compaction(self):
        cluster = compacting_cluster()
        ops = []
        for i in range(20):
            ops.append((i % 5, put(f"k{i % 2}", i)))
            ops.append(((i + 1) % 5, get(f"k{i % 2}")))
        cluster.execute_all(ops, timeout=30_000.0)
        result = check_linearizable(
            cluster.spec, cluster.history(), partition_by_key=True
        )
        assert result, result.reason


class TestCompactedResponses:
    def test_jumped_ops_resolve(self):
        # A victim submits writes that commit (via retries reaching the
        # leader) while it is partitioned from the responses; after a
        # snapshot catch-up its futures resolve — the latest with its true
        # response, earlier ones possibly with the COMPACTED sentinel.
        cluster = compacting_cluster(interval=3, retain=1)
        leader = cluster.leader()
        victim_pid = max(
            r.pid for r in cluster.replicas if r.pid != leader.pid
        )
        victim = cluster.replicas[victim_pid]
        futures = [victim.submit_rmw(increment("c")) for _ in range(3)]
        cluster.run(50.0)  # submissions reach the leader...
        cluster.net.isolate(victim_pid, start=cluster.sim.now)
        submitted_ids = [(victim_pid, seq) for seq in (1, 2, 3)]
        cluster.run_until(
            lambda: all(op_id in leader.committed_op_ids
                        for op_id in submitted_ids),
            timeout=20_000.0,
        )
        # Push the log far past the victim's position.
        for i in range(20):
            cluster.execute(leader.pid, put("filler", i), timeout=20_000.0)
        cluster.net.heal_all()
        cluster.run_until(lambda: all(f.done for f in futures),
                          timeout=30_000.0)
        values = [f.value for f in futures]
        # All three committed exactly once: the counter reads 3 everywhere,
        # and any non-sentinel responses are consistent with one execution
        # order (1, 2, 3).
        assert cluster.execute(leader.pid, get("c"), timeout=20_000.0) == 3
        concrete = [v for v in values if v is not COMPACTED]
        assert all(v in (1, 2, 3) for v in concrete)

    def test_sentinel_repr_and_singleton(self):
        from repro.objects.spec import CompactedResponse

        assert CompactedResponse() is COMPACTED
        assert "compacted" in repr(COMPACTED)

    def test_checker_accepts_unknown_responses(self):
        from repro.objects.register import RegisterSpec, read, write
        from repro.verify.history import History, HistoryEntry

        spec = RegisterSpec(initial=0)
        history = History([
            HistoryEntry(write(1), None, 0, 1, response_unknown=True),
            HistoryEntry(read(), 1, 2, 3),
        ])
        assert check_linearizable(spec, history)

    def test_checker_still_requires_unknown_ops_to_take_effect(self):
        from repro.objects.register import RegisterSpec, read, write
        from repro.verify.history import History, HistoryEntry

        spec = RegisterSpec(initial=0)
        # The write's response is unknown but it completed; a later read
        # of the initial value is a violation.
        history = History([
            HistoryEntry(write(1), None, 0, 1, response_unknown=True),
            HistoryEntry(read(), 0, 2, 3),
        ])
        assert not check_linearizable(spec, history)


class TestConfigValidation:
    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            ChtConfig(compaction_interval=-1)
        with pytest.raises(ValueError):
            ChtConfig(compaction_interval=10, compaction_retain=0)
