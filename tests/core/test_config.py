"""Tests for ChtConfig validation and derived defaults."""

import pytest

from repro.core.config import ChtConfig


def test_defaults_are_consistent():
    config = ChtConfig()
    assert config.majority == 3
    assert config.heartbeat_timeout == 2 * config.heartbeat_period + 2 * config.delta
    assert config.support_duration == (
        3 * config.support_period + 2 * config.delta + config.epsilon
    )
    assert config.retry_period == 2 * config.delta
    assert config.lease_renewal < config.lease_period


def test_majority_odd_even():
    assert ChtConfig(n=3).majority == 2
    assert ChtConfig(n=4).majority == 3
    assert ChtConfig(n=7).majority == 4


def test_explicit_values_not_overridden():
    config = ChtConfig(heartbeat_timeout=123.0, support_duration=456.0,
                       retry_period=7.0)
    assert config.heartbeat_timeout == 123.0
    assert config.support_duration == 456.0
    assert config.retry_period == 7.0


def test_rejects_bad_n():
    with pytest.raises(ValueError):
        ChtConfig(n=0)


def test_rejects_bad_delta():
    with pytest.raises(ValueError):
        ChtConfig(delta=0.0)


def test_rejects_negative_epsilon():
    with pytest.raises(ValueError):
        ChtConfig(epsilon=-1.0)


def test_rejects_renewal_longer_than_lease():
    with pytest.raises(ValueError):
        ChtConfig(lease_period=10.0, lease_renewal=20.0)


def test_rejects_lease_period_swallowed_by_epsilon():
    with pytest.raises(ValueError):
        ChtConfig(epsilon=200.0)  # default lease_period=100 < epsilon


def test_rejects_support_duration_below_period():
    with pytest.raises(ValueError):
        ChtConfig(support_period=50.0, support_duration=10.0)
