"""Tests for leadership changes: estimate transfer, invariants, liveness."""

import pytest

from repro.core.client import ChtCluster
from repro.core.config import ChtConfig
from repro.objects.kvstore import KVStoreSpec, get, put
from repro.verify import check_i2_i3, check_linearizable

from .conftest import make_cluster


def settled(seed=2):
    cluster = make_cluster(seed=seed)
    cluster.run_until_leader()
    cluster.execute(0, put("x", 1))
    cluster.run(100.0)
    return cluster


class TestLeaderCrash:
    def test_new_leader_emerges(self):
        cluster = settled()
        old = cluster.leader()
        cluster.crash(old.pid)
        new = cluster.run_until_leader(timeout=5000.0)
        assert new.pid != old.pid

    def test_committed_data_survives(self):
        cluster = settled()
        old = cluster.leader()
        cluster.execute(1, put("durable", 42))
        cluster.crash(old.pid)
        cluster.run_until_leader(timeout=5000.0)
        reader = next(
            r.pid for r in cluster.alive()
        )
        assert cluster.execute(reader, get("durable"), timeout=5000.0) == 42

    def test_writes_resume_after_failover(self):
        cluster = settled()
        old = cluster.leader()
        cluster.crash(old.pid)
        writer = next(r.pid for r in cluster.alive())
        assert cluster.execute(writer, put("post", 7), timeout=8000.0) is None
        assert cluster.execute(writer, get("post"), timeout=5000.0) == 7

    def test_i2_i3_hold_after_failover(self):
        cluster = settled()
        old = cluster.leader()
        cluster.crash(old.pid)
        cluster.run_until_leader(timeout=5000.0)
        cluster.execute_all(
            [(r.pid, put(f"k{r.pid}", r.pid)) for r in cluster.alive()],
            timeout=8000.0,
        )
        check_i2_i3([r for r in cluster.replicas if not r.crashed])

    def test_repeated_failovers(self):
        cluster = settled()
        for round_num in range(2):
            leader = cluster.leader() or cluster.run_until_leader(
                timeout=8000.0
            )
            cluster.crash(leader.pid)
            new = cluster.run_until_leader(timeout=8000.0)
            writer = new.pid
            assert cluster.execute(
                writer, put(f"round{round_num}", round_num), timeout=8000.0
            ) is None
        for round_num in range(2):
            reader = cluster.alive()[0].pid
            assert cluster.execute(
                reader, get(f"round{round_num}"), timeout=5000.0
            ) == round_num

    def test_history_linearizable_across_failover(self):
        cluster = settled()
        futures = [cluster.submit(i % 5, put("k", i)) for i in range(6)]
        futures += [cluster.submit(i % 5, get("k")) for i in range(6)]
        old = cluster.leader()
        cluster.run(15.0)
        cluster.crash(old.pid)
        cluster.run(4000.0)
        result = check_linearizable(
            cluster.spec,
            cluster.history(),
            partition_by_key=True,
        )
        assert result, result.reason


class TestInFlightBatchTransfer:
    def test_half_prepared_batch_is_resolved_consistently(self):
        # Crash the leader right after it started preparing a batch; the
        # successor must either commit exactly that batch or discard it,
        # never a different value for the same batch number.
        cluster = settled(seed=6)
        old = cluster.leader()
        future = cluster.submit(old.pid, put("inflight", 1))
        # Let the Prepare go out but crash before Commit likely arrives.
        cluster.run(cluster.config.delta + 1.0)
        cluster.crash(old.pid)
        cluster.run(6000.0)
        # BatchMonitor raises if any batch number got two different values;
        # additionally the history must stay linearizable whether or not
        # the in-flight write survived.
        result = check_linearizable(
            cluster.spec, cluster.history(), partition_by_key=True
        )
        assert result, result.reason
        # If the write is visible anywhere, it is visible consistently.
        alive = cluster.alive()
        cluster.run(1000.0)
        values = {
            cluster.execute(r.pid, get("inflight"), timeout=5000.0)
            for r in alive
        }
        assert len(values) == 1

    def test_client_retry_survives_leader_change(self):
        cluster = settled(seed=6)
        old = cluster.leader()
        submitter = next(r.pid for r in cluster.replicas
                         if r.pid != old.pid)
        future = cluster.submit(submitter, put("retry", 5))
        cluster.run(5.0)
        cluster.crash(old.pid)
        cluster.run_until(lambda: future.done, timeout=10_000.0)
        assert future.done
        assert cluster.execute(submitter, get("retry"), timeout=5000.0) == 5


class TestMinorityCrashes:
    def test_two_follower_crashes_tolerated(self):
        cluster = settled()
        leader = cluster.leader()
        followers = [r.pid for r in cluster.replicas if r.pid != leader.pid]
        cluster.crash(followers[0])
        cluster.crash(followers[1])
        assert cluster.execute(leader.pid, put("ok", 1), timeout=5000.0) is None
        survivor = next(
            pid for pid in followers[2:]
        )
        cluster.run(500.0)
        assert cluster.execute(survivor, get("ok"), timeout=5000.0) == 1
