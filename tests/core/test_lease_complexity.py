"""Renewal-traffic complexity: lease messages grow Θ(n), not Θ(n²).

The paper's red code renews every holder's lease with one broadcast per
renewal interval, so lease-category traffic per interval is linear in
the holder count.  A per-holder-pairwise scheme (or a bug that makes
every holder chatter back each interval) would grow quadratically.  The
ratio test below separates the two cleanly:

    m(L) = a + b*L   (linear)    => (m16 - m8) / (m8 - m4) = 2
    m(L) = a + b*L^2 (quadratic) => (m16 - m8) / (m8 - m4) = 4

so asserting the ratio stays at most 3 pins the linear regime with slack
for constant-term noise.
"""

from repro.core.client import ChtCluster
from repro.core.config import ChtConfig
from repro.objects.kvstore import KVStoreSpec, get, put

HOLDER_COUNTS = (4, 8, 16)
INTERVALS = 20


def lease_traffic(num_leaseholders, seed=19, reads=0):
    """Lease-category messages over ``INTERVALS`` renewal intervals."""
    cluster = ChtCluster(KVStoreSpec(), ChtConfig(n=5), seed=seed,
                         num_leaseholders=num_leaseholders)
    cluster.start()
    cluster.run_until_leader()
    cluster.execute(0, put("x", 1))
    cluster.run(3 * cluster.config.lease_period)
    assert all(lh._lease_valid() for lh in cluster.leaseholders)
    cluster.net.reset_counters()
    window = INTERVALS * cluster.config.lease_renewal
    if reads:
        for i in range(reads):
            lh = cluster.leaseholders[i % num_leaseholders]
            assert lh.submit_read(get("x")).done
    cluster.run(window)
    return dict(cluster.net.sent_by_category()).get("lease", 0)


def test_renewal_traffic_grows_linearly_in_holder_count():
    m4, m8, m16 = (lease_traffic(count) for count in HOLDER_COUNTS)
    assert m4 > 0, "no renewal traffic measured"
    assert m8 > m4 and m16 > m8, "traffic must grow with the tier"
    ratio = (m16 - m8) / (m8 - m4)
    assert ratio <= 3.0, (
        f"renewal traffic per interval looks superlinear: "
        f"m4={m4} m8={m8} m16={m16} ratio={ratio:.2f} "
        "(linear => ~2, quadratic => ~4)"
    )


def test_renewal_traffic_is_per_interval_linear_in_absolute_terms():
    # One grant broadcast per interval reaches every other process once:
    # (n - 1) acceptors + clients + L holders.  Allow 2x slack for
    # tenure churn and retransmission, but rule out an extra factor of L.
    for count in HOLDER_COUNTS:
        traffic = lease_traffic(count)
        per_interval = traffic / INTERVALS
        ceiling = 2.0 * (5 - 1 + 1 + count) + 4
        assert per_interval <= ceiling, (
            f"L={count}: {per_interval:.1f} lease msgs/interval "
            f"exceeds the linear ceiling {ceiling:.1f}"
        )


def test_local_reads_add_no_renewal_traffic():
    quiet = lease_traffic(8, seed=23)
    busy = lease_traffic(8, seed=23, reads=200)
    assert busy == quiet, (
        "lease traffic must be independent of read volume: "
        f"quiet={quiet} busy={busy}"
    )
