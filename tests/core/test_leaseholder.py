"""The leaseholder read tier: read-only learners serving local reads.

Pins the tier's contract end to end:

* a settled leaseholder answers reads synchronously with **zero**
  messages — the read path never touches the network;
* the tier acquires leases from the leader's grants, renews them, and a
  lapsed holder refuses to serve;
* a crashed holder is shrunk out of the leader's holder set (after the
  lease-expiry wait) and reintegrates via ``LeaseRequest`` on recovery;
* client sessions route reads through the tier (replicas as fallback)
  without adding consensus traffic;
* the crash-time state classification is pinned the same way as the
  replica's (``test_volatile_reset``): every attribute must be declared
  stable, volatile, or infrastructure.
"""

import pytest

from repro.core.client import ChtCluster
from repro.core.config import ChtConfig
from repro.core.leaseholder import Leaseholder
from repro.objects.kvstore import KVStoreSpec, get, increment, put
from repro.sim.clocks import ClockModel
from repro.sim.core import Simulator
from repro.sim.network import Network
from repro.sim.process import Process

from .conftest import make_cluster


def make_tiered(num_leaseholders=2, seed=3, **kwargs):
    cluster = make_cluster(seed=seed, num_leaseholders=num_leaseholders,
                           **kwargs)
    cluster.run_until_leader()
    cluster.execute(0, put("x", 7))
    # Let a few renewal cycles pass so every holder is leased and settled.
    cluster.run(3 * cluster.config.lease_period)
    return cluster


class TestLocalReads:
    def test_settled_leaseholder_read_is_synchronous_and_zero_message(self):
        cluster = make_tiered()
        lh = cluster.leaseholders[0]
        assert lh._lease_valid()
        before = cluster.net.total_sent()
        future = lh.submit_read(get("x"))
        assert future.done, "settled local read must resolve synchronously"
        assert future.value == 7
        assert cluster.net.total_sent() == before

    def test_read_volume_independent_of_messages(self):
        counts = []
        for reads in (10, 100):
            cluster = make_tiered(seed=5)
            cluster.net.reset_counters()
            lh = cluster.leaseholders[1]
            for _ in range(reads):
                assert lh.submit_read(get("x")).done
            cluster.run(50.0)
            counts.append(cluster.net.total_sent())
        assert counts[1] <= counts[0] * 1.2 + 10

    def test_lapsed_holder_does_not_serve(self):
        cluster = make_tiered()
        lh = cluster.leaseholders[0]
        cluster.net.isolate(lh.pid, start=cluster.sim.now)
        cluster.run(cluster.config.lease_period + cluster.config.epsilon + 1)
        assert not lh._lease_valid()
        future = lh.submit_read(get("x"))
        assert not future.done, "lapsed holder must block, not serve stale"

    def test_session_reads_route_through_the_tier(self):
        cluster = make_tiered(num_clients=2)
        cluster.net.reset_counters()
        value = cluster.execute(cluster.clients[0].pid, get("x"))
        assert value == 7
        sent = dict(cluster.net.sent_by_category())
        # The session round-trip is client traffic; serving it consumed
        # no consensus messages.
        assert sent.get("consensus", 0) == 0
        assert sent.get("client", 0) >= 2

    def test_crashed_tier_falls_back_to_replicas(self):
        cluster = make_tiered(num_clients=1)
        for lh in cluster.leaseholders:
            cluster.crash(lh.pid)
        value = cluster.execute(cluster.clients[0].pid, get("x"))
        assert value == 7


class TestLeaseLifecycle:
    def test_holders_acquire_and_renew(self):
        cluster = make_tiered()
        stamps = [lh.lease.ts for lh in cluster.leaseholders]
        assert all(lh._lease_valid() for lh in cluster.leaseholders)
        cluster.run(2 * cluster.config.lease_renewal)
        assert all(
            lh.lease.ts > ts
            for lh, ts in zip(cluster.leaseholders, stamps)
        ), "renewal grants must advance the lease timestamp"

    def test_leader_tracks_the_tier_in_its_holder_set(self):
        cluster = make_tiered()
        leader = cluster.leader()
        lh_pids = {lh.pid for lh in cluster.leaseholders}
        assert lh_pids <= set(leader.tenure.leaseholders)

    def test_crashed_holder_is_shrunk_after_expiry_wait(self):
        cluster = make_tiered()
        victim = cluster.leaseholders[0]
        cluster.crash(victim.pid)
        # The next commit must wait out the victim's lease, then drop it.
        cluster.execute(0, increment("x"))
        leader = cluster.leader()
        assert leader.tenure.lease_expiry_waits >= 1
        assert victim.pid not in leader.tenure.leaseholders

    def test_recovered_holder_reintegrates_via_lease_request(self):
        cluster = make_tiered()
        victim = cluster.leaseholders[0]
        cluster.crash(victim.pid)
        cluster.execute(0, increment("x"))
        assert victim.pid not in cluster.leader().tenure.leaseholders
        cluster.recover(victim.pid)
        cluster.run_until(
            lambda: victim.pid in cluster.leader().tenure.leaseholders
            and victim._lease_valid(),
            timeout=5 * cluster.config.lease_period,
        )
        assert victim._lease_valid()
        assert victim.submit_read(get("x")).done

    def test_recovered_holder_catches_up_before_serving_fresh(self):
        cluster = make_tiered()
        victim = cluster.leaseholders[0]
        cluster.crash(victim.pid)
        cluster.execute(0, put("x", 99))
        cluster.recover(victim.pid)
        cluster.run_until(
            lambda: victim._lease_valid()
            and victim.applied_upto >= cluster.leader().applied_upto,
            timeout=5 * cluster.config.lease_period,
        )
        assert victim.submit_read(get("x")).value == 99


class TestConstruction:
    def test_leaseholder_pid_must_lie_above_the_acceptors(self):
        sim = Simulator(seed=0)
        net = Network(sim, delta=10.0)
        clocks = ClockModel(6, 2.0, rng=sim.fork_rng("clocks"))
        with pytest.raises(ValueError, match="above"):
            Leaseholder(2, sim, net, clocks, KVStoreSpec(), ChtConfig(n=5))

    def test_rmw_submission_is_rejected(self):
        cluster = make_tiered()
        with pytest.raises(ValueError, match="read"):
            cluster.leaseholders[0].submit_read(put("x", 1))

    def test_tier_free_cluster_is_unchanged(self):
        # num_leaseholders=0 must not consume randomness or add pids:
        # byte-identical traces are pinned by comparing message counters.
        plain = make_cluster(seed=11)
        tiered = make_cluster(seed=11, num_leaseholders=0)
        plain.run_until_leader()
        tiered.run_until_leader()
        plain.execute(0, put("k", 1))
        tiered.execute(0, put("k", 1))
        plain.run(500.0)
        tiered.run(500.0)
        assert plain.net.messages_sent == tiered.net.messages_sent
        assert plain.sim.now == tiered.sim.now


class TestClassification:
    """Same pinning discipline as the replica's volatile-reset tests."""

    def base_attr_names(self):
        sim = Simulator(seed=0)
        net = Network(sim, delta=1.0)
        clocks = ClockModel(1, 0.0, rng=sim.fork_rng("clocks"))
        return set(vars(Process(0, sim, net, clocks)))

    def test_every_attribute_is_classified(self):
        cluster = make_tiered()
        base = self.base_attr_names()
        classified = (
            set(Leaseholder.STABLE_ATTRS)
            | set(Leaseholder._VOLATILE_FACTORIES)
            | set(Leaseholder.INFRA_ATTRS)
        )
        for lh in cluster.leaseholders:
            extra = set(vars(lh)) - base
            unclassified = extra - classified
            assert not unclassified, (
                f"unclassified leaseholder attributes "
                f"{sorted(unclassified)}: add them to STABLE_ATTRS, "
                "_VOLATILE_FACTORIES, or INFRA_ATTRS in Leaseholder"
            )
            stale = classified - extra
            assert not stale, (
                f"classified attributes {sorted(stale)} no longer exist "
                "on Leaseholder"
            )

    def test_classes_are_disjoint(self):
        stable = set(Leaseholder.STABLE_ATTRS)
        volatile = set(Leaseholder._VOLATILE_FACTORIES)
        infra = set(Leaseholder.INFRA_ATTRS)
        assert not stable & volatile
        assert not stable & infra
        assert not volatile & infra

    def test_crash_resets_volatile_keeps_stable(self):
        cluster = make_tiered()
        lh = cluster.leaseholders[0]
        stable_before = {
            name: getattr(lh, name) for name in Leaseholder.STABLE_ATTRS
        }
        assert stable_before["applied_upto"] > 0
        cluster.crash(lh.pid)
        for name, factory in Leaseholder._VOLATILE_FACTORIES.items():
            expected = factory() if callable(factory) else factory
            assert getattr(lh, name) == expected, name
        for name, value in stable_before.items():
            assert getattr(lh, name) == value, name

    def test_lease_is_volatile(self):
        # A restarted holder must never serve from a pre-crash lease: the
        # lease belongs to the volatile block by construction.
        assert "lease" in Leaseholder._VOLATILE_FACTORIES
        assert "lease" not in Leaseholder.STABLE_ATTRS

    def test_pending_batches_are_stable(self):
        # PrepareAck externalizes "I know batch j is in flight" — it
        # releases the leader from the lease-expiry wait — so the
        # knowledge must survive a crash-stop restart.
        assert "pending_batches" in Leaseholder.STABLE_ATTRS
