"""Tests for the read-lease and leaseholder mechanisms (the red code)."""

import pytest

from repro.core.client import ChtCluster
from repro.core.config import ChtConfig
from repro.objects.kvstore import KVStoreSpec, get, put
from repro.sim.latency import FixedDelay

from .conftest import make_cluster


def settled_cluster(seed=3, **kwargs):
    cluster = make_cluster(seed=seed, **kwargs)
    cluster.run_until_leader()
    cluster.execute(0, put("x", 1))
    cluster.run(200.0)
    return cluster


class TestLeaseIssuance:
    def test_all_followers_hold_valid_leases(self):
        cluster = settled_cluster()
        leader = cluster.leader()
        for replica in cluster.replicas:
            if replica.pid == leader.pid:
                continue
            assert replica.lease is not None
            assert replica.lease.valid_at(
                replica.local_time, cluster.config.lease_period
            )

    def test_leases_carry_latest_committed_batch(self):
        cluster = settled_cluster()
        leader = cluster.leader()
        cluster.run(2 * cluster.config.lease_renewal)
        for replica in cluster.replicas:
            if replica.pid != leader.pid:
                assert replica.lease.k == leader.tenure.k

    def test_leases_renewed_continuously(self):
        cluster = settled_cluster()
        follower = next(
            r for r in cluster.replicas if not r.is_leader()
        )
        first_ts = follower.lease.ts
        cluster.run(2 * cluster.config.lease_renewal)
        assert follower.lease.ts > first_ts

    def test_lease_validity_window(self):
        from repro.core.state import ReadLease

        lease = ReadLease(k=3, ts=100.0)
        assert lease.valid_at(150.0, lease_period=100.0)
        assert not lease.valid_at(200.0, lease_period=100.0)


class TestLeaseholderMechanism:
    def test_unresponsive_holder_delays_commit_once(self):
        cluster = ChtCluster(
            KVStoreSpec(), ChtConfig(n=5), seed=3,
            post_gst_delay=FixedDelay(10.0),
        )
        cluster.start()
        leader = cluster.run_until_leader()
        cluster.execute(0, put("x", 1))
        cluster.run(200.0)
        victim = max(r.pid for r in cluster.replicas if r.pid != leader.pid)
        cluster.net.isolate(victim, start=cluster.sim.now)

        # First write after the partition: pays the full lease-expiry wait.
        base_commits = len(leader.commit_log)
        cluster.execute(0, put("a", 1), timeout=5000.0)
        first = leader.commit_log[base_commits]
        assert first.expiry_wait
        # The wait runs until (last lease grant) + lease_period + epsilon;
        # the prepare may start up to one renewal after that grant, so the
        # observable latency floor is lease_period + epsilon - lease_renewal.
        config = cluster.config
        assert first.latency >= (
            config.lease_period + config.epsilon - config.lease_renewal
        )

        # The victim is dropped from the leaseholder set: later writes fast.
        assert victim not in leader.tenure.leaseholders
        cluster.execute(0, put("a", 2))
        second = leader.commit_log[base_commits + 1]
        assert not second.expiry_wait
        assert second.latency <= 4 * cluster.config.delta

    def test_victim_cannot_read_after_removal(self):
        cluster = settled_cluster(post_gst_delay=FixedDelay(10.0))
        leader = cluster.leader()
        victim_pid = max(
            r.pid for r in cluster.replicas if r.pid != leader.pid
        )
        victim = cluster.replicas[victim_pid]
        cluster.net.isolate(victim_pid, start=cluster.sim.now)
        cluster.execute(0, put("x", 99), timeout=5000.0)
        cluster.run(2 * cluster.config.lease_period)
        # Its lease has expired and cannot renew: reads block, never stale.
        future = victim.submit_read(get("x"))
        assert not future.done

    def test_reintegration_after_heal(self):
        cluster = settled_cluster(post_gst_delay=FixedDelay(10.0))
        leader = cluster.leader()
        victim_pid = max(
            r.pid for r in cluster.replicas if r.pid != leader.pid
        )
        cluster.net.isolate(victim_pid, start=cluster.sim.now)
        cluster.execute(0, put("x", 99), timeout=5000.0)
        assert victim_pid not in leader.tenure.leaseholders
        cluster.net.heal_all()
        # LeaseRequest reintegrates the victim within a few renewals.
        cluster.run_until(
            lambda: victim_pid in leader.tenure.leaseholders, timeout=2000.0
        )
        cluster.run(2 * cluster.config.lease_renewal + 4 * cluster.config.delta)
        victim = cluster.replicas[victim_pid]
        future = victim.submit_read(get("x"))
        cluster.run_until(lambda: future.done)
        assert future.value == 99

    def test_commit_waits_cover_clock_skew(self):
        # The expiry wait includes the +epsilon term: with maximal skew a
        # slow-clocked holder's lease must still be expired at commit time.
        config = ChtConfig(n=3, epsilon=4.0)
        cluster = ChtCluster(
            KVStoreSpec(), config, seed=5,
            post_gst_delay=FixedDelay(10.0),
            clock_offsets=[2.0, -2.0, 0.0],
        )
        cluster.start()
        leader = cluster.run_until_leader()
        cluster.execute(0, put("x", 1))
        cluster.run(200.0)
        victim = next(
            r for r in cluster.replicas if r.pid != leader.pid
        )
        cluster.net.isolate(victim.pid, start=cluster.sim.now)
        before_commit = len(leader.commit_log)
        future = cluster.submit(leader.pid, put("x", 2))
        cluster.run_until(lambda: future.done, timeout=5000.0)
        record = leader.commit_log[before_commit]
        last_lease_ts = victim.lease.ts
        # Commit happened only after the victim's lease expired on the
        # victim's own clock.
        commit_real = cluster.clocks.real(leader.pid, record.committed_local)
        victim_local_at_commit = cluster.clocks.local(victim.pid, commit_real)
        assert victim_local_at_commit > last_lease_ts + config.lease_period


class TestLeaseSafety:
    def test_no_stale_reads_around_lease_expiry(self):
        # Continuously write while a follower is cut off; any read it
        # serves must never be stale (it blocks instead).
        cluster = settled_cluster(post_gst_delay=FixedDelay(10.0))
        leader = cluster.leader()
        victim_pid = max(
            r.pid for r in cluster.replicas if r.pid != leader.pid
        )
        victim = cluster.replicas[victim_pid]
        reads = []
        cluster.net.isolate(victim_pid, start=cluster.sim.now)
        for i in range(3):
            reads.append((victim.submit_read(get("x")), i))
            cluster.execute(0, put("x", 100 + i), timeout=5000.0)
        cluster.net.heal_all()
        cluster.run(1000.0)
        from repro.verify import check_linearizable

        result = check_linearizable(
            cluster.spec, cluster.history(), partition_by_key=True
        )
        assert result, result.reason
