"""The paper's 3-delta read-blocking bound, at the leaseholder tier.

``test_reads.py`` pins the bound for replica-local reads; these tests
pin it for the read-only tier: a leaseholder read that conflicts with a
pending (prepared-but-uncommitted) batch blocks, unblocks within
``3 * delta`` of local time, and returns the conflicting write's value;
a read of an unrelated key sails through the same window synchronously.
"""

from repro.core.client import ChtCluster
from repro.core.config import ChtConfig
from repro.objects.kvstore import KVStoreSpec, get, put
from repro.sim.latency import FixedDelay


def settled_cluster(seed=11):
    cluster = ChtCluster(
        KVStoreSpec(), ChtConfig(n=5), seed=seed,
        num_leaseholders=2,
        post_gst_delay=FixedDelay(10.0),
    )
    cluster.start()
    cluster.run_until_leader()
    cluster.execute(0, put("hot", 1))
    cluster.execute(0, put("cold", 1))
    cluster.run(3 * cluster.config.lease_period)
    return cluster


def run_to_pending(cluster, lh, op):
    """Submit ``op`` at the leader; run until ``lh`` holds the batch as
    pending (Prepare arrived) but not yet committed."""
    leader = cluster.leader()
    future = cluster.submit(leader.pid, op)
    cluster.run_until(
        lambda: any(j not in lh.batches for j in lh.pending_batches),
        timeout=100.0,
    )
    return future


class TestConflictingReads:
    def test_conflicting_read_blocks_then_unblocks_within_3_delta(self):
        cluster = settled_cluster()
        lh = cluster.leaseholders[0]
        write = run_to_pending(cluster, lh, put("hot", 2))
        read = lh.submit_read(get("hot"))
        assert not read.done, "read conflicting with a pending RMW must block"
        cluster.run_until(lambda: read.done)
        assert read.value == 2, "the blocked read sees the pending write"
        assert cluster.stats.max_blocking("read") <= 3 * cluster.config.delta
        cluster.run_until(lambda: write.done)

    def test_sustained_conflict_tail_stays_under_3_delta(self):
        cluster = settled_cluster(seed=13)
        lh = cluster.leaseholders[1]
        futures = []
        for i in range(10):
            futures.append(cluster.submit(cluster.leader().pid,
                                          put("hot", i)))
            futures.append(lh.submit_read(get("hot")))
            cluster.run(15.0)
        cluster.run_until(lambda: all(f.done for f in futures))
        assert cluster.stats.max_blocking("read") <= 3 * cluster.config.delta

    def test_k_hat_rises_only_for_the_conflicting_key(self):
        cluster = settled_cluster()
        lh = cluster.leaseholders[0]
        run_to_pending(cluster, lh, put("hot", 2))
        pending_j = max(
            j for j in lh.pending_batches if j not in lh.batches
        )
        assert lh._compute_k_hat(get("hot")) == pending_j
        assert lh._compute_k_hat(get("cold")) < pending_j
        cluster.run_until(lambda: lh.applied_upto >= pending_j)


class TestNonConflictingReads:
    def test_nonconflicting_read_never_blocks(self):
        cluster = settled_cluster()
        lh = cluster.leaseholders[0]
        run_to_pending(cluster, lh, put("hot", 2))
        read = lh.submit_read(get("cold"))
        assert read.done, "read of an unrelated key must not block"
        assert read.value == 1

    def test_steady_state_reads_do_not_block_at_any_holder(self):
        cluster = settled_cluster(seed=17)
        futures = [lh.submit_read(get("hot"))
                   for lh in cluster.leaseholders for _ in range(5)]
        assert all(f.done for f in futures)
        assert cluster.stats.blocked_fraction("read") == 0.0
