"""Coverage sweep for the red code's read paths in ``core/replica.py``.

The paper's "red code" serves reads locally but makes them wait out two
hazards: a conflicting pending RMW (the k-hat condition) and the loss of
a valid read basis (lease/leadership).  These tests pin the exact
blocking semantics — a conflicting read unblocks on the commit *apply*
and not a step earlier — and that reads racing a leader change are never
stale, witnessed by the linearizability checker.
"""

from repro.core.client import ChtCluster
from repro.core.config import ChtConfig
from repro.objects.kvstore import KVStoreSpec, get, put
from repro.sim.latency import FixedDelay
from repro.verify import check_linearizable


def _conflicted_follower(seed=9):
    """A cluster with a follower holding an uncommitted conflicting batch."""
    cluster = ChtCluster(
        KVStoreSpec(), ChtConfig(n=5), seed=seed,
        post_gst_delay=FixedDelay(10.0), obs=True,
    )
    cluster.start()
    leader = cluster.run_until_leader()
    cluster.execute(0, put("hot", 1))
    cluster.run(200.0)
    follower = next(r for r in cluster.replicas if r.pid != leader.pid)
    write_future = cluster.submit(leader.pid, put("hot", 2))
    cluster.run_until(
        lambda: any(j not in follower.batches
                    for j in follower.pending_batches), timeout=100.0
    )
    pending_j = max(
        j for j in follower.pending_batches if j not in follower.batches
    )
    return cluster, leader, follower, write_future, pending_j


class TestUnblockOnCommit:
    def test_blocked_read_unblocks_exactly_on_apply(self):
        """The read resolves in the same event that applies the
        conflicting batch — never before ``applied_upto`` reaches the
        batch, and with the batch's value once it does."""
        cluster, _, follower, write_future, pending_j = _conflicted_follower()
        read_future = follower.submit_read(get("hot"))
        assert not read_future.done, "conflicting read must block"

        while not read_future.done:
            assert follower.applied_upto < pending_j, (
                "read still blocked after the conflicting batch applied"
            )
            assert cluster.sim.step(), "simulation drained with read blocked"

        assert follower.applied_upto >= pending_j
        assert read_future.value == 2
        cluster.run_until(lambda: write_future.done)

    def test_blocked_read_records_conflict_wait(self):
        """The trace attributes the whole block to the conflict wait."""
        cluster, _, follower, write_future, _ = _conflicted_follower()
        read_future = follower.submit_read(get("hot"))
        assert not read_future.done
        cluster.run_until(lambda: read_future.done)

        spans = [
            s for s in cluster.obs.tracer.spans
            if s.name == "read" and s.pid == follower.pid
        ]
        span = spans[-1]
        assert span.status == "served"
        assert span.attrs.get("conflict_wait", 0.0) > 0.0
        assert span.duration > 0.0
        blocked = cluster.obs.registry.counter(
            "reads_blocked_total", pid=follower.pid
        )
        assert blocked.value >= 1
        cluster.run_until(lambda: write_future.done)

    def test_nonconflicting_read_is_untouched_by_pending_batch(self):
        cluster, _, follower, write_future, _ = _conflicted_follower()
        read_future = follower.submit_read(get("cold"))
        assert read_future.done, "non-conflicting read must not block"
        cluster.run_until(lambda: write_future.done)


class TestReadsAcrossLeaderChange:
    def test_reads_during_leader_change_are_never_stale(self):
        """Crash the leader with reads in flight everywhere: every read
        that completes returns a value consistent with the write order
        (the full history stays linearizable)."""
        cluster = ChtCluster(
            KVStoreSpec(), ChtConfig(n=5), seed=17, obs=True
        )
        cluster.start()
        leader = cluster.run_until_leader()
        writer = (leader.pid + 1) % 5
        cluster.execute(writer, put("x", 1))
        cluster.run(100.0)

        cluster.crash(leader.pid)
        survivors = [r for r in cluster.replicas if not r.crashed]
        # Reads issued immediately after the crash, while no replica can
        # have a valid basis from the new regime yet.
        futures = [r.submit_read(get("x")) for r in survivors]
        futures.append(survivors[0].submit_rmw(put("x", 2)))
        assert cluster.run_until(
            lambda: all(f.done for f in futures), timeout=20_000.0
        ), f"ops stalled across the leader change; {cluster.describe()}"

        for f in futures[:-1]:
            assert f.value in (1, 2), f"stale read value {f.value!r}"
        result = check_linearizable(
            cluster.spec, cluster.history(), partition_by_key=True
        )
        assert result.ok, result.reason

    def test_read_blocked_on_orphaned_batch_survives_failover(self):
        """A read blocked on a batch the crashing leader never committed
        must still resolve — the new leader either commits or supersedes
        the batch — and the history must stay linearizable."""
        cluster = ChtCluster(
            KVStoreSpec(), ChtConfig(n=5), seed=9,
            post_gst_delay=FixedDelay(10.0), obs=True,
        )
        cluster.start()
        leader = cluster.run_until_leader()
        cluster.execute(0, put("hot", 1))
        cluster.run(200.0)
        follower = next(r for r in cluster.replicas if r.pid != leader.pid)
        cluster.submit(leader.pid, put("hot", 2))
        cluster.run_until(
            lambda: any(j not in follower.batches
                        for j in follower.pending_batches), timeout=100.0
        )
        read_future = follower.submit_read(get("hot"))
        assert not read_future.done
        cluster.crash(leader.pid)
        assert cluster.run_until(
            lambda: read_future.done, timeout=20_000.0
        ), f"read never unblocked after failover; {cluster.describe()}"
        assert read_future.value in (1, 2)
        result = check_linearizable(
            cluster.spec, cluster.history(), partition_by_key=True
        )
        assert result.ok, result.reason
