"""Tests for the paper's headline read properties.

* Reads are local: the number of messages is independent of the number of
  reads (paper Section 3, "Locality of reads").
* After stabilization reads are non-blocking unless a conflicting RMW is
  pending (Section 3, "Non-blocking reads").
* A blocking read blocks at most 3*delta local time.
* The leader's reads never block.
"""

import pytest

from repro.core.client import ChtCluster
from repro.core.config import ChtConfig
from repro.objects.kvstore import KVStoreSpec, get, put
from repro.sim.latency import FixedDelay

from .conftest import make_cluster


class TestLocality:
    def test_reads_send_no_messages(self, kv_cluster):
        kv_cluster.execute(0, put("x", 1))
        kv_cluster.run(100.0)
        before = kv_cluster.net.total_sent()
        futures = [kv_cluster.submit(pid, get("x"))
                   for pid in range(5) for _ in range(10)]
        kv_cluster.run_until(lambda: all(f.done for f in futures))
        after = kv_cluster.net.total_sent()
        # Background traffic (heartbeats, leases) continues, but nothing is
        # attributable to reads: compare against an identical quiet window.
        quiet_start = kv_cluster.net.total_sent()
        kv_cluster.run(0.0)
        assert after - before <= 10  # only background ticks, no per-read cost

    def test_message_count_independent_of_read_volume(self):
        counts = []
        for reads in (10, 100):
            cluster = make_cluster(seed=7)
            cluster.run_until_leader()
            cluster.execute(0, put("x", 1))
            cluster.run(50.0)
            cluster.net.reset_counters()
            futures = [cluster.submit(pid % 5, get("x"))
                       for pid in range(reads)]
            cluster.run_until(lambda: all(f.done for f in futures))
            duration_padding = 50.0
            cluster.run(duration_padding)
            counts.append(cluster.net.total_sent())
        # 10x the reads must not produce meaningfully more messages.
        assert counts[1] <= counts[0] * 1.2 + 10

    def test_read_code_path_sends_nothing_direct(self, kv_cluster):
        kv_cluster.execute(0, put("x", 1))
        kv_cluster.run(100.0)
        replica = kv_cluster.replicas[2]
        before = kv_cluster.net.total_sent()
        future = replica.submit_read(get("x"))
        # The read completes synchronously from the local replica.
        assert future.done
        assert kv_cluster.net.total_sent() == before


class TestNonBlocking:
    def test_steady_state_reads_do_not_block(self, kv_cluster):
        kv_cluster.execute(0, put("x", 1))
        kv_cluster.run(200.0)
        futures = [kv_cluster.submit(pid, get("x")) for pid in range(5)]
        assert all(f.done for f in futures)  # resolved without advancing time
        assert kv_cluster.stats.blocked_fraction("read") == 0.0

    def test_read_blocks_before_first_lease(self):
        cluster = make_cluster(seed=9)
        # Immediately after start nobody holds a lease yet.
        future = cluster.submit(3, get("x"))
        assert not future.done
        cluster.run_until(lambda: future.done)
        assert cluster.stats.get(future_op_id(cluster)).blocked

    def test_nonconflicting_pending_rmw_does_not_block_reads(self):
        cluster = make_cluster(seed=9)
        leader = cluster.run_until_leader()
        cluster.execute(0, put("x", 1))
        cluster.run(200.0)
        # Partition a follower's ack path? Simpler: make the prepared batch
        # observable by submitting a write for a DIFFERENT key and reading
        # during its in-flight window.
        write_future = cluster.submit(1, put("hot", 1))
        cluster.run(cluster.config.delta + 1.0)  # Prepare delivered, not Commit
        read_future = cluster.submit(2, get("x"))  # unrelated key
        assert read_future.done, "non-conflicting read must not block"
        cluster.run_until(lambda: write_future.done)

    def test_conflicting_pending_rmw_blocks_read(self):
        cluster = ChtCluster(
            KVStoreSpec(), ChtConfig(n=5), seed=9,
            post_gst_delay=FixedDelay(10.0),
        )
        cluster.start()
        leader = cluster.run_until_leader()
        cluster.execute(0, put("hot", 1))
        cluster.run(200.0)
        follower = next(
            r for r in cluster.replicas if r.pid != leader.pid
        )
        write_future = cluster.submit(leader.pid, put("hot", 2))
        # Run until the follower has the batch pending (Prepare arrived).
        cluster.run_until(
            lambda: any(j not in follower.batches
                        for j in follower.pending_batches), timeout=100.0
        )
        read_future = follower.submit_read(get("hot"))
        assert not read_future.done, "conflicting read must block"
        cluster.run_until(lambda: read_future.done)
        assert read_future.value == 2  # sees the conflicting write's value

    def test_blocking_bounded_by_3_delta(self):
        cluster = ChtCluster(
            KVStoreSpec(), ChtConfig(n=5), seed=11,
            post_gst_delay=FixedDelay(10.0),
        )
        cluster.start()
        cluster.run_until_leader()
        cluster.execute(0, put("hot", 0))
        cluster.run(200.0)
        # Pound the hot key with writes while everyone reads it.
        futures = []
        for i in range(10):
            futures.append(cluster.submit(0, put("hot", i)))
            for pid in range(5):
                futures.append(cluster.submit(pid, get("hot")))
            cluster.run(15.0)
        cluster.run_until(lambda: all(f.done for f in futures))
        assert cluster.stats.max_blocking("read") <= 3 * cluster.config.delta


class TestLeaderReads:
    def test_leader_reads_never_block(self, kv_cluster):
        leader = kv_cluster.leader()
        kv_cluster.execute(0, put("hot", 1))
        futures = []
        for i in range(5):
            kv_cluster.submit(1, put("hot", i + 10))
            futures.append(leader.submit_read(get("hot")))
            kv_cluster.run(10.0)
        kv_cluster.run_until(lambda: all(f.done for f in futures))
        assert kv_cluster.stats.blocked_fraction("read",
                                                 pid=leader.pid) == 0.0

    def test_demoted_leader_loses_implicit_lease(self):
        cluster = make_cluster(seed=13)
        leader = cluster.run_until_leader()
        cluster.execute(0, put("x", 1))
        cluster.run(100.0)
        # Isolate the leader: its implicit lease dies with its leadership;
        # its reads must eventually block rather than return stale data.
        cluster.net.isolate(leader.pid, start=cluster.sim.now)
        cluster.run(3 * cluster.config.support_duration)
        assert not leader.is_leader()
        future = leader.submit_read(get("x"))
        assert not future.done, "isolated ex-leader must not serve reads"


class TestKHat:
    def test_k_hat_rises_to_conflicting_pending_batch(self):
        cluster = ChtCluster(
            KVStoreSpec(), ChtConfig(n=5), seed=11,
            post_gst_delay=FixedDelay(10.0),
        )
        cluster.start()
        leader = cluster.run_until_leader()
        cluster.execute(0, put("hot", 1))
        cluster.run(200.0)
        follower = next(r for r in cluster.replicas if r.pid != leader.pid)
        cluster.submit(leader.pid, put("hot", 2))
        cluster.run_until(
            lambda: any(j not in follower.batches
                        for j in follower.pending_batches), timeout=100.0
        )
        pending_j = max(
            j for j in follower.pending_batches if j not in follower.batches
        )
        assert follower._compute_k_hat(get("hot")) == pending_j
        assert follower._compute_k_hat(get("cold")) < pending_j


def future_op_id(cluster):
    """The op id of the most recently submitted operation."""
    return cluster.stats.records[-1].op_id
