"""Tests for single-replica crash-recovery cycles."""

import pytest

from repro.core.client import ChtCluster
from repro.core.config import ChtConfig
from repro.objects.kvstore import KVStoreSpec, get, put
from repro.verify import check_linearizable


def settled(seed=12):
    cluster = ChtCluster(KVStoreSpec(), ChtConfig(n=5), seed=seed)
    cluster.start()
    cluster.run_until_leader()
    cluster.execute(0, put("x", 1))
    cluster.run(100.0)
    return cluster


class TestFollowerRecovery:
    def test_recovered_follower_catches_up_and_reads(self):
        cluster = settled()
        leader = cluster.leader()
        victim = next(r.pid for r in cluster.replicas
                      if r.pid != leader.pid)
        cluster.crash(victim)
        for i in range(5):
            cluster.execute(leader.pid, put("x", 10 + i))
        cluster.recover(victim)
        cluster.run(2000.0)
        assert cluster.execute(victim, get("x"), timeout=10_000.0) == 14

    def test_recovered_follower_participates_in_quorums(self):
        cluster = settled()
        leader = cluster.leader()
        others = [r.pid for r in cluster.replicas if r.pid != leader.pid]
        cluster.crash(others[0])
        cluster.crash(others[1])
        # Majority is exactly met; recover one, crash another: still ok.
        cluster.recover(others[0])
        cluster.run(1000.0)
        cluster.crash(others[2])
        assert cluster.execute(leader.pid, put("q", 1),
                               timeout=15_000.0) is None

    def test_stable_state_survives_recovery(self):
        cluster = settled()
        leader = cluster.leader()
        victim = next(r.pid for r in cluster.replicas
                      if r.pid != leader.pid)
        replica = cluster.replicas[victim]
        batches_before = dict(replica.batches)
        cluster.crash(victim)
        cluster.recover(victim)
        for j, ops in batches_before.items():
            assert replica.batches.get(j) == ops
        # Volatile state was reset.
        assert replica.lease is None
        assert replica.tenure is None


class TestLeaderRecovery:
    def test_recovered_old_leader_rejoins_as_follower_under_new_one(self):
        cluster = settled()
        old = cluster.leader()
        cluster.crash(old.pid)
        new = cluster.run_until_leader(timeout=10_000.0)
        cluster.execute(new.pid, put("x", 2), timeout=10_000.0)
        cluster.recover(old.pid)
        cluster.run(3000.0)
        # With the default smallest-id Omega the recovered process may be
        # re-elected; either way exactly one initialized leader exists and
        # the old value is preserved.
        cluster.run_until_leader(timeout=10_000.0)
        leaders = [r for r in cluster.alive() if r.is_leader()]
        assert len(leaders) == 1
        reader = old.pid
        assert cluster.execute(reader, get("x"), timeout=10_000.0) == 2

    def test_history_linearizable_across_recovery(self):
        cluster = settled()
        old = cluster.leader()
        futures = {
            i % 5: cluster.submit(i % 5, put("k", i)) for i in range(4)
        }
        cluster.run(15.0)
        cluster.crash(old.pid)
        cluster.run(2000.0)
        cluster.recover(old.pid)
        cluster.run(6000.0)
        reads = [cluster.submit(i % 5, get("k")) for i in range(4)]
        cluster.run(5000.0)
        # Ops from processes that stayed up terminate; the crashed
        # process's own in-flight op died with its client task (the paper
        # promises termination only to correct processes).
        assert all(f.done for pid, f in futures.items() if pid != old.pid)
        assert all(f.done for f in reads)
        result = check_linearizable(
            cluster.spec, cluster.history(), partition_by_key=True
        )
        assert result, result.reason
