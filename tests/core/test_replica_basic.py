"""Basic end-to-end behaviour of the CHT cluster."""

import pytest

from repro.core.client import ChtCluster
from repro.core.config import ChtConfig
from repro.objects.counter import CounterSpec, add, value
from repro.objects.kvstore import KVStoreSpec, get, increment, put
from repro.objects.lock import LockSpec, acquire, owner, release
from repro.verify import check_linearizable

from .conftest import make_cluster


class TestBootstrap:
    def test_a_leader_emerges(self, kv_cluster):
        leader = kv_cluster.leader()
        assert leader is not None
        assert leader.is_leader()

    def test_exactly_one_leader(self, kv_cluster):
        leaders = [r for r in kv_cluster.replicas if r.is_leader()]
        assert len(leaders) == 1

    def test_leader_committed_noop_bootstrap(self, kv_cluster):
        leader = kv_cluster.leader()
        kv_cluster.run(200.0)
        # Batch 1 (inherited/empty) plus the NoOp batch must be committed.
        assert leader.applied_upto >= 2

    def test_el1_monitor_stayed_clean(self, kv_cluster):
        kv_cluster.run(500.0)
        # LeaderIntervalMonitor raises on violation; reaching here with
        # recorded intervals means EL1 held.
        assert kv_cluster.leader_monitor.intervals


class TestRmwOperations:
    def test_write_and_read_roundtrip(self, kv_cluster):
        assert kv_cluster.execute(1, put("x", 10)) is None
        assert kv_cluster.execute(3, get("x")) == 10

    def test_rmw_response_depends_on_state(self, kv_cluster):
        assert kv_cluster.execute(0, increment("c", 2)) == 2
        assert kv_cluster.execute(4, increment("c", 3)) == 5

    def test_rmw_from_every_process(self, kv_cluster):
        for pid in range(5):
            kv_cluster.execute(pid, put(f"key{pid}", pid))
        for pid in range(5):
            assert kv_cluster.execute((pid + 1) % 5, get(f"key{pid}")) == pid

    def test_concurrent_rmws_all_complete(self, kv_cluster):
        results = kv_cluster.execute_all(
            [(i % 5, increment("c")) for i in range(20)]
        )
        assert sorted(results) == list(range(1, 21))

    def test_counter_object(self):
        cluster = make_cluster(spec=CounterSpec(), seed=4)
        cluster.run_until_leader()
        assert cluster.execute(0, add(5)) == 5
        assert cluster.execute(1, value()) == 5

    def test_lock_object(self):
        cluster = make_cluster(spec=LockSpec(), seed=4)
        cluster.run_until_leader()
        assert cluster.execute(0, acquire("alice")) is True
        assert cluster.execute(1, acquire("bob")) is False
        assert cluster.execute(2, owner()) == "alice"
        assert cluster.execute(0, release("alice")) is True
        assert cluster.execute(1, acquire("bob")) is True


class TestBatching:
    def test_concurrent_submissions_share_batches(self, kv_cluster):
        futures = [kv_cluster.submit(i % 5, put(f"k{i}", i))
                   for i in range(10)]
        kv_cluster.run_until(lambda: all(f.done for f in futures))
        leader = kv_cluster.leader()
        # 10 operations committed in fewer than 10 batches (batching works;
        # bootstrap committed 2 batches before this test's operations).
        op_batches = [
            rec for rec in leader.commit_log if rec.size > 0
        ]
        total_ops = sum(rec.size for rec in op_batches)
        assert total_ops >= 10
        assert len(leader.commit_log) < 12

    def test_no_operation_in_two_batches(self, kv_cluster):
        kv_cluster.execute_all([(i % 5, put("k", i)) for i in range(10)])
        seen = {}
        for j, ops in kv_cluster.batch_monitor.batch_values.items():
            for inst in ops:
                assert inst.op_id not in seen, (
                    f"op {inst} in batches {seen[inst.op_id]} and {j}"
                )
                seen[inst.op_id] = j

    def test_batches_identical_across_replicas(self, kv_cluster):
        kv_cluster.execute_all([(i % 5, put("k", i)) for i in range(10)])
        kv_cluster.run(500.0)
        leader = kv_cluster.leader()
        for replica in kv_cluster.replicas:
            for j, ops in replica.batches.items():
                assert leader.batches.get(j) == ops

    def test_all_replicas_converge(self, kv_cluster):
        kv_cluster.execute_all([(i % 5, put("k", i)) for i in range(10)])
        kv_cluster.run(500.0)
        states = {repr(r.state) for r in kv_cluster.replicas}
        applied = {r.applied_upto for r in kv_cluster.replicas}
        assert len(states) == 1
        assert len(applied) == 1


class TestLinearizability:
    def test_mixed_workload_linearizable(self, kv_cluster):
        ops = []
        for i in range(15):
            ops.append((i % 5, put(f"k{i % 3}", i)))
            ops.append(((i + 2) % 5, get(f"k{i % 3}")))
        kv_cluster.execute_all(ops)
        result = check_linearizable(
            kv_cluster.spec, kv_cluster.history(), partition_by_key=True
        )
        assert result, result.reason

    def test_register_history_linearizable(self, register_cluster):
        from repro.objects.register import read, write

        ops = []
        for i in range(8):
            ops.append((i % 5, write(i)))
            ops.append(((i + 1) % 5, read()))
        register_cluster.execute_all(ops)
        result = check_linearizable(
            register_cluster.spec, register_cluster.history()
        )
        assert result, result.reason


class TestClientApi:
    def test_submit_read_on_rmw_rejected(self, kv_cluster):
        with pytest.raises(ValueError):
            kv_cluster.replicas[0].submit_read(put("k", 1))

    def test_crashed_replica_rejects_submissions(self, kv_cluster):
        kv_cluster.crash(4)
        with pytest.raises(RuntimeError):
            kv_cluster.replicas[4].submit_rmw(put("k", 1))
        with pytest.raises(RuntimeError):
            kv_cluster.replicas[4].submit_read(get("k"))

    def test_execute_timeout(self):
        cluster = make_cluster(seed=5)
        # Crash a majority: operations cannot complete.
        for pid in (0, 1, 2):
            cluster.crash(pid)
        with pytest.raises(TimeoutError):
            cluster.execute(3, put("k", 1), timeout=500.0)
