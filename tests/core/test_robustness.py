"""Robustness tests: the paper's degraded-mode guarantees.

"If a majority of processes crash or the bounds on process speed or
message delay never hold, only liveness is compromised ... If clocks are
not synchronized, the object remains consistent in the sense that the
sub-execution consisting of the RMW operations is still linearizable, but
reads may stall or return stale object states.  Once clock synchrony is
restored, however, reads will again return the current object state."
"""

import pytest

from repro.core.client import ChtCluster
from repro.core.config import ChtConfig
from repro.objects.kvstore import KVStoreSpec, get, put
from repro.sim.latency import SpikeDelay, UniformDelay
from repro.verify import check_linearizable

from .conftest import make_cluster


class TestMajorityCrash:
    def test_liveness_lost_but_never_wrong(self):
        cluster = make_cluster(seed=2)
        cluster.run_until_leader()
        cluster.execute(0, put("x", 1))
        for pid in (0, 1, 2):
            cluster.crash(pid)
        write = cluster.submit(3, put("x", 2))
        read = cluster.submit(4, get("x"))
        cluster.run(5000.0)
        # The write can never commit; the read may only complete if the
        # survivor still holds a valid lease, in which case it returns the
        # pre-crash value, never garbage.
        assert not write.done
        if read.done:
            assert read.value == 1
        result = check_linearizable(
            cluster.spec, cluster.history(), partition_by_key=True
        )
        assert result, result.reason

    def test_recovery_of_crashed_majority_restores_liveness(self):
        cluster = make_cluster(seed=2)
        cluster.run_until_leader()
        cluster.execute(0, put("x", 1))
        for pid in (0, 1, 2):
            cluster.crash(pid)
        cluster.run(500.0)
        for pid in (0, 1, 2):
            cluster.recover(pid)
        cluster.run_until_leader(timeout=8000.0)
        assert cluster.execute(3, put("x", 2), timeout=8000.0) is None
        assert cluster.execute(4, get("x"), timeout=8000.0) == 2


class TestPreGstChaos:
    def test_safety_under_loss_and_delay(self):
        cluster = ChtCluster(
            KVStoreSpec(),
            ChtConfig(n=5),
            seed=8,
            gst=800.0,
            pre_gst_delay=SpikeDelay(1.0, 10.0, 200.0, spike_prob=0.3),
            pre_gst_drop_prob=0.3,
        )
        cluster.start()
        futures = [cluster.submit(i % 5, put(f"k{i % 2}", i))
                   for i in range(8)]
        futures += [cluster.submit(i % 5, get(f"k{i % 2}"))
                    for i in range(8)]
        cluster.run(6000.0)
        # After GST everything completes...
        assert all(f.done for f in futures)
        # ...and the full history (including pre-GST chaos) is linearizable.
        result = check_linearizable(
            cluster.spec, cluster.history(), partition_by_key=True
        )
        assert result, result.reason

    def test_operations_before_gst_eventually_complete(self):
        cluster = ChtCluster(
            KVStoreSpec(), ChtConfig(n=5), seed=9,
            gst=500.0, pre_gst_drop_prob=0.9,
        )
        cluster.start()
        future = cluster.submit(2, put("x", 1))
        cluster.run(400.0)
        cluster.run_until(lambda: future.done, timeout=5000.0)
        assert future.done


class TestClockDesync:
    def _desynced_run(self):
        cluster = make_cluster(seed=4)
        leader = cluster.run_until_leader()
        cluster.execute(0, put("x", 0))
        cluster.run(200.0)
        # Throw a follower's clock far ahead of the envelope.
        victim = next(r.pid for r in cluster.replicas
                      if r.pid != leader.pid)
        cluster.clocks.desynchronize(victim, cluster.sim.now, jump=500.0)
        return cluster, victim

    def test_rmw_subhistory_stays_linearizable(self):
        cluster, victim = self._desynced_run()
        futures = [cluster.submit(i % 5, put("x", i)) for i in range(6)]
        cluster.run(3000.0)
        assert all(f.done for f in futures)
        rmw_only = cluster.history(kinds=("rmw",))
        assert check_linearizable(cluster.spec, rmw_only,
                                  partition_by_key=True)

    def test_desynced_reader_stalls_rather_than_lies(self):
        cluster, victim = self._desynced_run()
        # The victim's clock is 500 ahead: every lease looks expired, so
        # its reads block (stall) instead of returning stale data.
        future = cluster.replicas[victim].submit_read(get("x"))
        cluster.run(300.0)
        assert not future.done

    def test_reads_recover_after_resync(self):
        cluster, victim = self._desynced_run()
        future = cluster.replicas[victim].submit_read(get("x"))
        cluster.run(300.0)
        assert not future.done
        cluster.clocks.resynchronize(victim, cluster.sim.now)
        cluster.run_until(lambda: future.done, timeout=20_000.0)
        assert future.value == 0


class TestPermanentAsynchrony:
    def test_never_returns_wrong_results(self):
        # Delays never stabilize below delta (the model's bound is simply
        # false): liveness may suffer, safety must not.
        cluster = ChtCluster(
            KVStoreSpec(), ChtConfig(n=5, delta=10.0), seed=10,
            gst=10.0 ** 9,
            pre_gst_delay=UniformDelay(5.0, 120.0),
            pre_gst_drop_prob=0.05,
        )
        cluster.start()
        futures = [cluster.submit(i % 5, put("k", i)) for i in range(6)]
        futures += [cluster.submit(i % 5, get("k")) for i in range(6)]
        cluster.run(20_000.0)
        result = check_linearizable(
            cluster.spec, cluster.history(), partition_by_key=True
        )
        assert result, result.reason
