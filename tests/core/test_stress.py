"""Stress tests: adversarial networks, larger clusters, flapping Omega,
reads racing leader changes, and the remaining object types end-to-end.
"""

import pytest

from repro.core.client import ChtCluster
from repro.core.config import ChtConfig
from repro.objects.bank import BankSpec, balance, total, transfer
from repro.objects.kvstore import KVStoreSpec, get, put
from repro.objects.queue import QueueSpec, dequeue, enqueue, peek
from repro.verify import check_i2_i3, check_linearizable


class TestNonFifoNetwork:
    """The paper's model does not assume FIFO links; safety must hold on
    an adversarially reordering network too."""

    def _cluster(self, seed):
        cluster = ChtCluster(KVStoreSpec(), ChtConfig(n=5), seed=seed)
        cluster.net.fifo = False
        cluster.start()
        return cluster

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_linearizable_under_reordering(self, seed):
        cluster = self._cluster(seed)
        cluster.run_until_leader()
        ops = []
        for i in range(10):
            ops.append((i % 5, put(f"k{i % 2}", i)))
            ops.append(((i + 3) % 5, get(f"k{i % 2}")))
        cluster.execute_all(ops, timeout=30_000.0)
        result = check_linearizable(
            cluster.spec, cluster.history(), partition_by_key=True
        )
        assert result, result.reason

    def test_reordering_with_leader_crash(self):
        cluster = self._cluster(5)
        leader = cluster.run_until_leader()
        futures = [cluster.submit(i % 5, put("k", i)) for i in range(6)]
        cluster.run(15.0)
        cluster.crash(leader.pid)
        cluster.run(8000.0)
        result = check_linearizable(
            cluster.spec, cluster.history(), partition_by_key=True
        )
        assert result, result.reason


class TestLargerCluster:
    def test_n7_tolerates_three_crashes(self):
        cluster = ChtCluster(KVStoreSpec(), ChtConfig(n=7), seed=2)
        cluster.start()
        leader = cluster.run_until_leader()
        cluster.execute(0, put("x", 1))
        for victim in [leader.pid, (leader.pid + 1) % 7,
                       (leader.pid + 2) % 7]:
            cluster.crash(victim)
        survivor = next(r.pid for r in cluster.alive())
        assert cluster.execute(survivor, put("y", 2),
                               timeout=30_000.0) is None
        assert cluster.execute(survivor, get("x"), timeout=10_000.0) == 1
        check_i2_i3([r for r in cluster.replicas if not r.crashed])

    def test_n3_minimum_viable(self):
        cluster = ChtCluster(KVStoreSpec(), ChtConfig(n=3), seed=2)
        cluster.start()
        cluster.run_until_leader()
        assert cluster.execute(1, put("x", 1)) is None
        assert cluster.execute(2, get("x")) == 1
        cluster.crash(cluster.leader().pid)
        survivor = next(r.pid for r in cluster.alive())
        assert cluster.execute(survivor, get("x"), timeout=10_000.0) == 1


class TestFlappingOmega:
    def test_el1_survives_rapid_leader_flapping(self):
        # An adversarial Omega alternates its output every call; the
        # enhanced service must never let two leaders coexist, and the
        # cluster may simply fail to make progress while flapping.
        flap = {"on": True, "count": 0}

        def chooser():
            if not flap["on"]:
                return 0
            flap["count"] += 1
            return flap["count"] % 3

        cluster = ChtCluster(
            KVStoreSpec(), ChtConfig(n=5), seed=4, oracle_leader=chooser,
        )
        cluster.start()
        future = cluster.submit(3, put("x", 1))
        cluster.run(2000.0)  # LeaderIntervalMonitor raises on violation
        flap["on"] = False   # Omega stabilizes on process 0
        cluster.run_until(lambda: future.done, timeout=20_000.0)
        assert future.done
        assert cluster.execute(2, get("x"), timeout=10_000.0) == 1
        result = check_linearizable(
            cluster.spec, cluster.history(), partition_by_key=True
        )
        assert result, result.reason


class TestReadsDuringFailover:
    def test_reads_across_leader_change_never_stale(self):
        cluster = ChtCluster(KVStoreSpec(), ChtConfig(n=5), seed=6)
        cluster.start()
        leader = cluster.run_until_leader()
        cluster.execute(0, put("x", 1))
        cluster.run(100.0)
        # Issue reads at every process, crash the leader immediately,
        # and write a new value through the successor.
        read_futures = [
            cluster.replicas[pid].submit_read(get("x"))
            for pid in range(5) if pid != leader.pid
        ]
        cluster.crash(leader.pid)
        writer = next(r.pid for r in cluster.alive())
        cluster.execute(writer, put("x", 2), timeout=20_000.0)
        cluster.run(5000.0)
        assert all(f.done for f in read_futures)
        assert all(f.value in (1, 2) for f in read_futures)
        result = check_linearizable(
            cluster.spec, cluster.history(), partition_by_key=True
        )
        assert result, result.reason


class TestMoreObjectTypes:
    def test_queue_preserves_fifo_order(self):
        cluster = ChtCluster(QueueSpec(), ChtConfig(n=5), seed=8)
        cluster.start()
        cluster.run_until_leader()
        for i in range(5):
            cluster.execute(i % 5, enqueue(i))
        assert cluster.execute(3, peek()) == 0
        dequeued = [cluster.execute(i % 5, dequeue()) for i in range(5)]
        assert dequeued == [0, 1, 2, 3, 4]

    def test_bank_conserves_money_under_concurrency(self):
        cluster = ChtCluster(
            BankSpec({"a": 100, "b": 100, "c": 100}),
            ChtConfig(n=5), seed=8,
        )
        cluster.start()
        cluster.run_until_leader()
        transfers = [
            (i % 5, transfer(src, dst, 10))
            for i, (src, dst) in enumerate(
                [("a", "b"), ("b", "c"), ("c", "a"), ("a", "c"),
                 ("b", "a")] * 2
            )
        ]
        cluster.execute_all(transfers, timeout=30_000.0)
        assert cluster.execute(2, total()) == 300
        balances = [cluster.execute(3, balance(acct))
                    for acct in ("a", "b", "c")]
        assert sum(balances) == 300

    def test_bank_total_reads_do_not_block_on_transfers(self):
        # total() never conflicts with transfer() (money conservation),
        # so total reads stay non-blocking under a transfer stream.
        cluster = ChtCluster(BankSpec({"a": 1000, "b": 0}),
                             ChtConfig(n=5), seed=8)
        cluster.start()
        leader = cluster.run_until_leader()
        cluster.execute(0, transfer("a", "b", 1))
        cluster.run(200.0)
        marker = len(cluster.stats.records)
        futures = []
        for i in range(10):
            futures.append(cluster.submit(0, transfer("a", "b", 1)))
            for pid in range(5):
                futures.append(cluster.submit(pid, total()))
            cluster.run(10.0)
        cluster.run_until(lambda: all(f.done for f in futures),
                          timeout=20_000.0)
        reads = [r for r in cluster.stats.records[marker:]
                 if r.kind == "read"]
        assert all(r.response == 1000 for r in reads)
        assert all(not r.blocked for r in reads)
