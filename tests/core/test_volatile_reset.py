"""Pin the crash-time state classification against the real attribute set.

Every instance attribute a :class:`ChtReplica` carries beyond the
Process base must be classified as stable, volatile, or infrastructure.
The classification drives ``on_crash`` — an unclassified field would
silently survive crashes it must not (or vice versa) — so this test
fails the moment someone adds a field without deciding its fate.
"""

import math

from repro.core.client import ChtCluster
from repro.core.config import ChtConfig
from repro.core.replica import ChtReplica
from repro.objects.kvstore import KVStoreSpec, put
from repro.sim.clocks import ClockModel
from repro.sim.core import Simulator
from repro.sim.network import Network
from repro.sim.process import Process


def base_attr_names():
    sim = Simulator(seed=0)
    net = Network(sim, delta=1.0)
    clocks = ClockModel(1, 0.0, rng=sim.fork_rng("clocks"))
    return set(vars(Process(0, sim, net, clocks)))


def run_workload(durability=False):
    cluster = ChtCluster(KVStoreSpec(), ChtConfig(n=3), seed=6,
                         durability=durability)
    cluster.start()
    leader = cluster.run_until_leader()
    for i in range(3):
        cluster.execute(leader.pid, put(f"k{i}", i))
    cluster.run(300.0)
    return cluster, leader


class TestClassification:
    def test_every_replica_attribute_is_classified(self):
        cluster, leader = run_workload()
        base = base_attr_names()
        classified = (
            set(ChtReplica.STABLE_ATTRS)
            | set(ChtReplica._VOLATILE_FACTORIES)
            | set(ChtReplica.INFRA_ATTRS)
        )
        for replica in cluster.replicas:
            extra = set(vars(replica)) - base
            unclassified = extra - classified
            assert not unclassified, (
                f"unclassified replica attributes {sorted(unclassified)}: "
                "add them to STABLE_ATTRS, _VOLATILE_FACTORIES, or "
                "INFRA_ATTRS in ChtReplica (and to on_crash if volatile)"
            )
            stale = classified - extra
            assert not stale, (
                f"classified attributes {sorted(stale)} no longer exist "
                "on ChtReplica"
            )

    def test_classes_are_disjoint(self):
        stable = set(ChtReplica.STABLE_ATTRS)
        volatile = set(ChtReplica._VOLATILE_FACTORIES)
        infra = set(ChtReplica.INFRA_ATTRS)
        assert not stable & volatile
        assert not stable & infra
        assert not volatile & infra


class TestCrashSemantics:
    def test_volatile_state_resets_to_factory_values(self):
        cluster, leader = run_workload()
        cluster.crash(leader.pid)
        for name, factory in ChtReplica._VOLATILE_FACTORIES.items():
            assert getattr(leader, name) == factory(), name

    def test_stable_state_survives_legacy_crash(self):
        cluster, leader = run_workload()
        before = {
            name: getattr(leader, name) for name in ChtReplica.STABLE_ATTRS
        }
        assert before["_op_seq"] > 0
        cluster.crash(leader.pid)
        for name, value in before.items():
            assert getattr(leader, name) == value, name

    def test_op_seq_is_stable_not_volatile(self):
        # Regression pin: _op_seq was historically listed under volatile
        # state.  Resetting it on crash would reissue op ids and break
        # I1; it belongs to the stable block.
        assert "_op_seq" in ChtReplica.STABLE_ATTRS
        assert "_op_seq" not in ChtReplica._VOLATILE_FACTORIES

    def test_durable_crash_erases_the_whole_stable_block(self):
        cluster, leader = run_workload(durability=True)
        assert leader.applied_upto > 0
        cluster.crash(leader.pid)
        assert leader.batches == {}
        assert leader.estimate is None
        assert leader.max_leader_ts_seen == -math.inf
        assert leader.applied_upto == 0
        assert leader.state == KVStoreSpec().initial_state()
        assert leader.committed_op_ids == set()
        assert leader.pruned_upto == 0
        assert leader.last_applied == {}
        assert leader._op_seq == 0
