"""Durability must not perturb fault-free executions.

Outside a fault window every sync completes inline with zero simulator
events and zero RNG draws, so a durability-enabled run is
*trace-identical* to a durability-off run of the same seed: same event
count, same final virtual time, same responses.  This is what lets every
existing benchmark/baseline number stand unchanged with the subsystem
merged in.
"""

from repro.core.client import ChtCluster
from repro.core.config import ChtConfig
from repro.objects.kvstore import KVStoreSpec, get, put


def run_workload(durability):
    cluster = ChtCluster(KVStoreSpec(), ChtConfig(n=5), seed=11,
                         durability=durability)
    cluster.start()
    leader = cluster.run_until_leader()
    values = []
    for i in range(6):
        values.append(cluster.execute(leader.pid, put(f"k{i}", i)))
    values.append(cluster.execute((leader.pid + 1) % 5, get("k3")))
    cluster.run(500.0)
    return cluster, values


def test_fault_free_runs_are_trace_identical():
    plain, plain_values = run_workload(durability=False)
    durable, durable_values = run_workload(durability=True)
    assert durable_values == plain_values
    assert durable.sim.now == plain.sim.now
    assert durable.sim.events_processed == plain.sim.events_processed
    assert durable.describe() == plain.describe()


def test_durable_run_actually_persisted_something():
    durable, _ = run_workload(durability=True)
    for replica in durable.replicas:
        stats = replica.durable.storage.stats
        assert stats["appends"] > 0
        assert stats["syncs"] > 0
