"""Crash-restart recovery at the cluster level.

A replica with a durability layer genuinely loses its memory on crash
and rebuilds from snapshot + WAL replay on restart — including the
reply cache, which is what keeps exactly-once working when a client's
retransmission races the committing replica's restart.
"""

import pytest

from repro.core.client import ChtCluster
from repro.core.config import ChtConfig
from repro.durable import attach_memory_durability, durable_audit
from repro.objects.counter import CounterSpec, increment, value
from repro.objects.kvstore import KVStoreSpec, get
from repro.objects.kvstore import increment as kv_increment
from repro.shard import ShardedCluster
from repro.verify.invariants import InvariantViolation, check_i2_i3


def durable_cluster(spec=None, n=5, seed=2, **kwargs):
    cluster = ChtCluster(spec or KVStoreSpec(), ChtConfig(n=n), seed=seed,
                         durability=True, **kwargs)
    cluster.start()
    cluster.run_until_leader()
    return cluster


def await_op(cluster, future, timeout=30_000.0):
    assert cluster.run_until(lambda: future.done, timeout), "op stuck"
    return future.value


class TestRestartRebuild:
    def test_crash_erases_memory_and_recovery_rebuilds_it(self):
        cluster = durable_cluster(CounterSpec())
        leader = cluster.leader()
        for _ in range(3):
            cluster.execute(leader.pid, increment())
        cluster.run(200.0)
        victim = next(r for r in cluster.replicas if r.pid != leader.pid)
        batches_before = dict(victim.batches)
        applied_before = victim.applied_upto
        assert applied_before > 0

        cluster.crash(victim.pid)
        # Durable crash model: memory is actually gone while down.
        assert victim.batches == {}
        assert victim.applied_upto == 0
        assert victim.estimate is None
        assert victim.state == 0

        cluster.recover(victim.pid)
        # Snapshot + WAL replay restored the pre-crash stable block
        # (durably synced state is a prefix of what memory had).
        assert victim.applied_upto <= applied_before
        for j, ops in victim.batches.items():
            assert batches_before.get(j) == ops
        cluster.run(1000.0)
        check_i2_i3(cluster.replicas)
        durable_audit(cluster.replicas)
        # The restarted replica serves and the object keeps counting.
        assert cluster.execute(leader.pid, increment()) == 4

    def test_restarted_replica_never_reissues_op_ids(self):
        cluster = durable_cluster(CounterSpec(), n=3)
        leader = cluster.leader()
        cluster.execute(leader.pid, increment())
        seq_before = leader._op_seq
        assert seq_before > 0
        cluster.crash(leader.pid)
        cluster.recover(leader.pid)
        # The counter restarts a full reservation block above the
        # durable floor — strictly past anything issued pre-crash.
        assert leader._op_seq > seq_before

    def test_full_cluster_power_failure_preserves_committed_data(self):
        cluster = durable_cluster(CounterSpec(), n=3)
        leader = cluster.leader()
        assert cluster.execute(leader.pid, increment()) == 1
        assert cluster.execute(leader.pid, increment()) == 2
        cluster.run(300.0)
        for replica in cluster.replicas:
            cluster.crash(replica.pid)
        cluster.run(100.0)
        for replica in cluster.replicas:
            cluster.recover(replica.pid)
        new_leader = cluster.run_until_leader(timeout=20_000.0)
        assert cluster.execute(new_leader.pid, value(),
                               timeout=20_000.0) == 2
        check_i2_i3(cluster.replicas)
        durable_audit(cluster.replicas)


class TestReplyCacheRecovery:
    """Satellite: retransmission racing a restart gets the *cached*
    response — the reply cache survives in the WAL."""

    def test_serial_retransmission_after_full_restart(self):
        cluster = ChtCluster(CounterSpec(), ChtConfig(n=3), seed=4,
                             num_clients=2, durability=True)
        cluster.start()
        cluster.run_until_leader()
        blocked, other = cluster.clients
        # Replies to the first session vanish: it commits but never hears.
        cluster.net.add_one_way_partition(
            frozenset(range(3)), frozenset({blocked.pid}),
            start=cluster.sim.now, end=cluster.sim.now + 1200.0,
        )
        fut1 = blocked.submit(increment())
        assert cluster.run_until(
            lambda: any(r.state >= 1 for r in cluster.replicas), 10_000.0
        ), "first increment never applied"
        assert not fut1.done
        # A second session's op forces group-commit flushes everywhere.
        assert await_op(cluster, other.submit(increment())) == 2

        for replica in cluster.replicas:
            cluster.crash(replica.pid)
        cluster.run(100.0)
        for replica in cluster.replicas:
            cluster.recover(replica.pid)

        # Retransmission (after the window heals) must be answered from
        # the recovered reply cache, not re-executed.
        assert await_op(cluster, fut1, timeout=40_000.0) == 1
        leader = cluster.run_until_leader(timeout=20_000.0)
        assert cluster.execute(leader.pid, value(), timeout=20_000.0) == 2
        for replica in cluster.replicas:
            cached = replica.last_applied.get(blocked.pid)
            if cached is not None:
                assert cached == (1, 1)
        durable_audit(cluster.replicas)

    def test_sharded_retransmission_after_group_restart(self):
        cluster = ShardedCluster(
            KVStoreSpec(), ChtConfig(n=3), num_groups=2, num_slots=4,
            seed=0, num_clients=1,
            group_setup=lambda group, gid: attach_memory_durability(group),
        ).start()
        cluster.run_until_leaders()
        group = cluster.groups[0]           # owns slots {0, 2}: "k9", "k2"
        blocked, spare = group.clients
        group.net.add_one_way_partition(
            frozenset(range(3)), frozenset({blocked.pid}),
            start=cluster.sim.now, end=cluster.sim.now + 1200.0,
        )
        fut1 = blocked.submit(kv_increment("k9"))
        assert cluster.run_until(
            lambda: any(r.applied_upto >= 1 for r in group.replicas),
            10_000.0,
        ), "first increment never applied"
        assert not fut1.done
        assert await_op(cluster, spare.submit(kv_increment("k9"))) == 2

        for replica in group.replicas:
            group.crash(replica.pid)
        cluster.run(100.0)
        for replica in group.replicas:
            group.recover(replica.pid)

        assert await_op(cluster, fut1, timeout=40_000.0) == 1
        assert await_op(cluster, spare.submit(get("k9")),
                        timeout=20_000.0) == 2
        # The sharded invariant surface now includes the durable audit.
        assert cluster.invariant_failures() == {}


class TestPromiseDurability:
    def test_skipped_promise_fsync_is_caught_at_recovery(self):
        # The planted bug: promises/estimates are appended but acks are
        # externalized without waiting for the sync.  The run-wide
        # monitor knows what each pid vouched for; a restart that
        # recovers less is an invariant verdict, not silent corruption.
        cluster = ChtCluster(CounterSpec(), ChtConfig(n=3), seed=4,
                             durability=True)
        for replica in cluster.replicas:
            replica.bug_switches.add("skip_promise_fsync")
        cluster.start()
        leader = cluster.run_until_leader()
        cluster.execute(leader.pid, increment())
        victim = next(r for r in cluster.replicas if r.pid != leader.pid)
        cluster.crash(victim.pid)
        with pytest.raises(InvariantViolation, match="promise regressed"):
            cluster.recover(victim.pid)

    def test_correct_sync_discipline_never_trips_the_check(self):
        cluster = durable_cluster(CounterSpec(), n=3)
        leader = cluster.leader()
        cluster.execute(leader.pid, increment())
        for replica in list(cluster.replicas):
            cluster.crash(replica.pid)
            cluster.recover(replica.pid)
            cluster.run(500.0)
        cluster.run_until_leader(timeout=20_000.0)
        durable_audit(cluster.replicas)
