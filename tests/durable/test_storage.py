"""MemStorage device semantics and the on-disk FileStorage backend."""

import random

import pytest

from repro.durable.disk import FileStorage
from repro.durable.storage import MemStorage
from repro.durable.wal import BatchRec, PromiseRec, SnapRecord
from repro.sim.core import Simulator


def make_store(seed=7):
    sim = Simulator(seed=1)
    return sim, MemStorage(sim, rng=random.Random(seed))


def synced(store, n):
    """Append ``n`` promise records and sync them inline."""
    for i in range(n):
        store.append(PromiseRec(float(i)))
    done = []
    store.sync(lambda: done.append(True))
    assert done, "fault-free sync must complete inline"


class TestMemStorage:
    def test_fault_free_sync_is_inline_and_eventless(self):
        sim, store = make_store()
        before = sim.events_processed
        synced(store, 3)
        assert sim.events_processed == before
        snap, records, _ = store.load()
        assert snap is None and len(records) == 3

    def test_crash_loses_unsynced_tail(self):
        sim, store = make_store()
        synced(store, 3)
        store.append(PromiseRec(99.0))
        store.append(PromiseRec(100.0))
        store.on_crash()
        _, records, _ = store.load()
        assert [r.t for r in records] == [0.0, 1.0, 2.0]

    def test_live_load_exposes_only_the_synced_prefix(self):
        # An end-of-run durability audit must see what a restart would,
        # not the volatile tail still sitting in the device queue.
        sim, store = make_store()
        synced(store, 2)
        store.append(PromiseRec(99.0))
        _, records, _ = store.load()
        assert len(records) == 2

    def test_slow_window_delays_completion(self):
        sim, store = make_store()
        store.add_window("slow", 0.0, 100.0, low=5.0, high=5.0)
        store.append(PromiseRec(1.0))
        done = []
        store.sync(lambda: done.append(sim.now))
        assert not done
        sim.run_for(10.0)
        assert done == [5.0]

    def test_stall_window_completes_at_window_end(self):
        sim, store = make_store()
        store.add_window("stall", 0.0, 50.0)
        store.append(PromiseRec(1.0))
        done = []
        store.sync(lambda: done.append(sim.now))
        sim.run_for(49.0)
        assert not done
        sim.run_for(2.0)
        assert done == [50.0]

    def test_crash_during_stall_is_fsync_loss(self):
        sim, store = make_store()
        store.add_window("stall", 0.0, 50.0)
        store.append(PromiseRec(1.0))
        done = []
        store.sync(lambda: done.append(True))
        sim.run_for(10.0)
        store.on_crash()
        sim.run_for(100.0)
        assert not done            # epoch guard: stale flush never acks
        _, records, _ = store.load()
        assert records == []       # the awaited write is gone

    def test_torn_crash_keeps_a_prefix_of_the_unsynced_tail(self):
        sim, store = make_store(seed=3)
        synced(store, 2)
        for i in range(6):
            store.append(PromiseRec(100.0 + i))
        store.add_window("torn", 0.0, 100.0)
        store.on_crash()
        _, records, stats = store.load()
        assert 2 <= len(records) <= 8
        # Whatever survived is a strict log prefix — no holes.
        expected = [0.0, 1.0] + [100.0 + i for i in range(6)]
        assert [r.t for r in records] == expected[:len(records)]
        assert stats["torn_crashes"] == 1

    def test_queued_syncs_coalesce_into_one_flush(self):
        sim, store = make_store()
        store.add_window("slow", 0.0, 100.0, low=5.0, high=5.0)
        done = []
        for i in range(3):
            store.append(PromiseRec(float(i)))
            store.sync(lambda: done.append(sim.now))
        sim.run_for(30.0)
        assert len(done) == 3
        assert store.stats["sync_requests"] == 3
        assert store.stats["syncs"] < 3    # group commit

    def test_snapshot_replaces_log_and_preserves_tail(self):
        sim, store = make_store()
        synced(store, 3)
        snap = SnapRecord(upto=2, state={"x": 1}, last_applied=(),
                          taken_at=1.0)
        tail = [PromiseRec(50.0), BatchRec(3, frozenset())]
        store.write_snapshot(snap, tail)
        got_snap, records, _ = store.load()
        assert got_snap == snap
        assert records == tail
        store.on_crash()               # snapshot + tail are durable
        got_snap, records, _ = store.load()
        assert got_snap == snap and records == tail

    def test_unknown_window_kind_rejected(self):
        _, store = make_store()
        with pytest.raises(ValueError):
            store.add_window("sticky", 0.0, 1.0)


class TestFileStorage:
    def test_records_survive_a_process_restart(self, tmp_path):
        root = str(tmp_path / "r0")
        store = FileStorage(root)
        store.append(PromiseRec(1.0))
        store.append(BatchRec(1, frozenset()))
        done = []
        store.sync(lambda: done.append(True))
        assert done
        reopened = FileStorage(root)
        snap, records, stats = reopened.load()
        assert snap is None
        assert records == [PromiseRec(1.0), BatchRec(1, frozenset())]
        assert not stats["torn_tail"]

    def test_unsynced_buffer_lost_on_crash(self, tmp_path):
        store = FileStorage(str(tmp_path / "r0"))
        store.append(PromiseRec(1.0))
        store.on_crash()
        _, records, _ = store.load()
        assert records == []

    def test_snapshot_roundtrip_subsumes_wal(self, tmp_path):
        root = str(tmp_path / "r0")
        store = FileStorage(root)
        store.append(PromiseRec(1.0))
        store.sync(lambda: None)
        snap = SnapRecord(upto=4, state={"a": 2}, last_applied=((7, 1, 2),),
                          taken_at=3.0)
        store.write_snapshot(snap, [PromiseRec(9.0)])
        got_snap, records, _ = FileStorage(root).load()
        assert got_snap == snap
        assert records == [PromiseRec(9.0)]

    def test_torn_wal_tail_reported_not_fatal(self, tmp_path):
        root = str(tmp_path / "r0")
        store = FileStorage(root)
        store.append(PromiseRec(1.0))
        store.append(PromiseRec(2.0))
        store.sync(lambda: None)
        wal = tmp_path / "r0" / "wal.log"
        wal.write_bytes(wal.read_bytes()[:-2])
        _, records, stats = FileStorage(root).load()
        assert records == [PromiseRec(1.0)]
        assert stats["torn_tail"]

    def test_corrupt_snapshot_is_fatal(self, tmp_path):
        root = str(tmp_path / "r0")
        store = FileStorage(root)
        snap = SnapRecord(upto=1, state={}, last_applied=(), taken_at=0.0)
        store.write_snapshot(snap, [])
        snap_file = tmp_path / "r0" / "snapshot.bin"
        data = bytearray(snap_file.read_bytes())
        data[-1] ^= 0xFF
        snap_file.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="corrupt snapshot"):
            FileStorage(root).load()

    def test_wal_bytes_grow_with_synced_records(self, tmp_path):
        store = FileStorage(str(tmp_path / "r0"))
        assert store.wal_bytes() == 0
        store.append(PromiseRec(1.0))
        store.sync(lambda: None)
        assert store.wal_bytes() > 0
