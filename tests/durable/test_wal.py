"""WAL framing, torn-tail decoding, and recovery-state rebuilding."""

import math

import pytest

from repro.core.messages import Estimate
from repro.durable.wal import (
    BatchRec,
    EstimateRec,
    PromiseRec,
    SeqReserve,
    SnapRecord,
    decode_wal,
    encode_record,
    rebuild,
    record_size,
)
from repro.objects.kvstore import KVStoreSpec, put
from repro.objects.spec import OpInstance
from repro.verify.invariants import InvariantViolation


def inst(pid, seq, key="k", value=1):
    return OpInstance((pid, seq), put(key, value))


SAMPLE_RECORDS = [
    PromiseRec(12.5),
    EstimateRec(frozenset({inst(1, 1)}), 12.5, 3),
    BatchRec(2, frozenset({inst(0, 4, "a", 9)})),
    SeqReserve(64),
    SnapRecord(upto=2, state={"k": 1}, last_applied=((1, 1, None),),
               taken_at=40.0),
]


class TestFraming:
    def test_roundtrip_all_record_types(self):
        data = b"".join(encode_record(r) for r in SAMPLE_RECORDS)
        records, torn = decode_wal(data)
        assert records == SAMPLE_RECORDS
        assert not torn

    def test_empty_log(self):
        assert decode_wal(b"") == ([], False)

    def test_truncated_tail_is_torn_not_fatal(self):
        data = b"".join(encode_record(r) for r in SAMPLE_RECORDS)
        records, torn = decode_wal(data[:-3])
        assert records == SAMPLE_RECORDS[:-1]
        assert torn

    def test_short_header_is_torn(self):
        data = encode_record(PromiseRec(1.0))
        records, torn = decode_wal(data + b"\x05")
        assert records == [PromiseRec(1.0)]
        assert torn

    def test_corrupt_crc_stops_replay(self):
        good = encode_record(PromiseRec(1.0))
        bad = bytearray(encode_record(PromiseRec(2.0)))
        bad[-1] ^= 0xFF  # flip a payload byte: CRC mismatch
        records, torn = decode_wal(good + bytes(bad))
        assert records == [PromiseRec(1.0)]
        assert torn

    def test_record_size_hints_positive(self):
        for rec in SAMPLE_RECORDS:
            assert record_size(rec) > 0


class TestRebuild:
    def setup_method(self):
        self.spec = KVStoreSpec()

    def test_empty_log_is_initial_state(self):
        rs = rebuild(self.spec, None, [])
        assert rs.promise == -math.inf
        assert rs.estimate is None
        assert rs.batches == {}
        assert rs.applied_upto == 0
        assert rs.state == self.spec.initial_state()
        assert rs.seq_reserved == 0

    def test_contiguous_batches_fold_into_state(self):
        b1 = frozenset({inst(1, 1, "x", 1)})
        b2 = frozenset({inst(1, 2, "y", 2)})
        rs = rebuild(self.spec, None, [BatchRec(1, b1), BatchRec(2, b2)])
        assert rs.applied_upto == 2
        assert rs.state.get("x") == 1 and rs.state.get("y") == 2
        # Reply cache rebuilt from the fold.
        assert rs.last_applied[1] == (2, None)
        assert rs.committed_op_ids == {(1, 1), (1, 2)}

    def test_gap_stops_the_fold_but_keeps_batches(self):
        b1 = frozenset({inst(1, 1, "x", 1)})
        b3 = frozenset({inst(1, 3, "z", 3)})
        rs = rebuild(self.spec, None, [BatchRec(1, b1), BatchRec(3, b3)])
        assert rs.applied_upto == 1
        assert rs.state.get("z") is None
        assert set(rs.batches) == {1, 3}

    def test_freshest_estimate_wins_and_bounds_promise(self):
        old = EstimateRec(frozenset({inst(1, 1)}), 5.0, 1)
        new = EstimateRec(frozenset({inst(1, 2)}), 9.0, 2)
        rs = rebuild(self.spec, None, [old, new, PromiseRec(7.0)])
        assert rs.estimate == Estimate(new.ops, 9.0, 2)
        # The adopted estimate implies a promise at least as high.
        assert rs.promise >= 9.0

    def test_divergent_batch_in_log_is_an_i1_verdict(self):
        a = frozenset({inst(1, 1, "x", 1)})
        b = frozenset({inst(2, 1, "x", 2)})
        with pytest.raises(InvariantViolation):
            rebuild(self.spec, None, [BatchRec(1, a), BatchRec(1, b)])

    def test_snapshot_seeds_state_and_prunes_older_batches(self):
        snap = SnapRecord(upto=2, state=self.spec.initial_state().set("s", 7),
                          last_applied=((1, 2, None),), taken_at=10.0)
        stale = BatchRec(1, frozenset({inst(1, 1, "old", 0)}))
        b3 = frozenset({inst(1, 3, "n", 3)})
        rs = rebuild(self.spec, snap, [stale, BatchRec(3, b3)])
        assert rs.pruned_upto == 2
        assert 1 not in rs.batches
        assert rs.applied_upto == 3
        assert rs.state.get("s") == 7 and rs.state.get("n") == 3
        assert rs.last_applied[1] == (3, None)

    def test_seq_floor_covers_every_id_source(self):
        est = EstimateRec(frozenset({inst(3, 9)}), 4.0, 2)
        b1 = frozenset({inst(3, 5, "x", 1)})
        rs = rebuild(self.spec, None,
                     [SeqReserve(2), BatchRec(1, b1), est])
        assert rs.seq_floor(3) == 9      # estimate op beats everything
        assert rs.seq_floor(0) == 2      # block reservation only
        rs2 = rebuild(self.spec, None, [BatchRec(1, b1)])
        assert rs2.seq_floor(3) == 5     # committed + reply-cache entry
