"""Tests for the enhanced leader service (EL1 and EL2)."""

import pytest

from repro.leader.enhanced import EnhancedLeaderService, LeaderLease
from repro.leader.omega import HeartbeatOmega, OracleOmega
from repro.sim.clocks import ClockModel
from repro.sim.core import Simulator
from repro.sim.latency import FixedDelay
from repro.sim.network import Network
from repro.sim.process import Process
from repro.verify.invariants import InvariantViolation, LeaderIntervalMonitor


class ServiceHost(Process):
    def __init__(self, *args):
        super().__init__(*args)
        self.service = None

    def on_message(self, src, msg):
        # Not asserted: some tests swap in an OracleOmega mid-run, after
        # which stray heartbeats from the original detector go unclaimed.
        self.service.handle(src, msg)


def build(n=5, oracle=None, monitor=None, epsilon=1.0, seed=3):
    sim = Simulator(seed=seed)
    clocks = ClockModel(n, epsilon=epsilon, rng=sim.fork_rng("clocks"))
    net = Network(sim, delta=5.0, post_gst_delay=FixedDelay(2.0))
    hosts = [ServiceHost(pid, sim, net, clocks) for pid in range(n)]
    for host in hosts:
        if oracle is not None:
            omega = OracleOmega(host, oracle)
        else:
            omega = HeartbeatOmega(host, period=10.0, timeout=35.0)
        host.service = EnhancedLeaderService(
            host, omega, n, support_period=10.0, support_duration=40.0,
            monitor=monitor,
        )
        host.service.start()
    return sim, hosts


class TestEL2:
    def test_eventually_exactly_one_leader(self):
        monitor = LeaderIntervalMonitor()
        sim, hosts = build(monitor=monitor)
        sim.run_for(200.0)
        now_claims = [
            h.service.am_leader(h.local_time, h.local_time) for h in hosts
        ]
        assert now_claims == [True, False, False, False, False]

    def test_leader_has_continuous_coverage(self):
        sim, hosts = build()
        sim.run_for(200.0)
        t = hosts[0].local_time
        assert hosts[0].service.am_leader(t - 100.0, t)

    def test_failover_elects_next(self):
        monitor = LeaderIntervalMonitor()
        sim, hosts = build(monitor=monitor)
        sim.run_for(200.0)
        hosts[0].crash()
        sim.run_for(400.0)
        claims = [
            h.service.am_leader(h.local_time, h.local_time)
            for h in hosts if not h.crashed
        ]
        assert claims == [True, False, False, False]

    def test_no_overlap_across_failover(self):
        # The monitor raises on any EL1 violation during the whole run,
        # including the handover window.
        monitor = LeaderIntervalMonitor()
        sim, hosts = build(monitor=monitor)
        sim.run_for(200.0)
        for h in hosts:
            h.service.am_leader(h.local_time, h.local_time)
        hosts[0].crash()
        for _ in range(60):
            sim.run_for(10.0)
            for h in hosts:
                if not h.crashed:
                    h.service.am_leader(h.local_time, h.local_time)


class TestEL1UnderSplitBrain:
    def test_split_omega_cannot_create_two_leaders(self):
        # Omega misbehaves: half the processes believe 0 is leader, half
        # believe 1.  EL1 must still hold: majorities intersect.
        def split(pid):
            return 0 if pid < 3 else 1

        monitor = LeaderIntervalMonitor()
        sim, hosts = build(
            oracle=None, monitor=monitor,
        )
        # Replace the omegas with a scripted split view.
        for host in hosts:
            host.service.omega = OracleOmega(host, lambda _pid=None,
                                             p=host.pid: split(p))
        sim.run_for(300.0)
        claims = [
            h.service.am_leader(h.local_time, h.local_time) for h in hosts
        ]
        # 0 has supporters {0,1,2} (a majority); 1 has {3,4} (not one).
        assert claims[0] is True
        assert claims[1] is False

    def test_monitor_catches_fabricated_overlap(self):
        monitor = LeaderIntervalMonitor()
        monitor.record_true(0, 0.0, 10.0)
        with pytest.raises(InvariantViolation):
            monitor.record_true(1, 5.0, 6.0)


class TestSupportRules:
    def test_grants_to_new_leader_start_after_old_promise(self):
        sim, hosts = build()
        sim.run_for(100.0)
        state = hosts[2].stable["enhanced-leader"]
        granted_until_before = state["granted_until"]
        # Force host 2 to switch allegiance.
        hosts[2].service.omega = OracleOmega(hosts[2], lambda _pid: 4)
        sim.run_for(15.0)
        store = hosts[4].service.support.get(2)
        assert store is not None
        for spans in store.by_counter.values():
            for (start, _end) in spans:
                assert start >= granted_until_before - 1e9 * 0  # sanity
        # The new grant must not start before the old promise expired.
        new_counter = hosts[2].stable["enhanced-leader"]["counter"]
        spans = store.by_counter[new_counter]
        assert min(s for s, _ in spans) >= granted_until_before

    def test_counter_increments_on_leader_change(self):
        sim, hosts = build()
        sim.run_for(100.0)
        before = hosts[2].stable["enhanced-leader"]["counter"]
        hosts[2].service.omega = OracleOmega(hosts[2], lambda _pid: 4)
        sim.run_for(25.0)
        assert hosts[2].stable["enhanced-leader"]["counter"] == before + 1

    def test_recovery_bumps_counter(self):
        sim, hosts = build()
        sim.run_for(100.0)
        before = hosts[2].stable["enhanced-leader"]["counter"]
        hosts[2].crash()
        hosts[2].recover()
        hosts[2].service.on_recover()
        assert hosts[2].stable["enhanced-leader"]["counter"] == before + 1

    def test_backwards_interval_rejected(self):
        sim, hosts = build()
        with pytest.raises(ValueError):
            hosts[0].service.am_leader(10.0, 5.0)

    def test_duration_must_exceed_period(self):
        sim, hosts = build()
        with pytest.raises(ValueError):
            EnhancedLeaderService(
                hosts[0], hosts[0].service.omega, 5,
                support_period=10.0, support_duration=5.0,
            )


class TestSupportStoreMerging:
    def test_same_counter_gap_coverage(self):
        from repro.leader.enhanced import _SupportStore

        store = _SupportStore()
        store.add(LeaderLease(1, 0.0, 10.0))
        store.add(LeaderLease(1, 20.0, 30.0))
        # Same counter, disjoint intervals: covers t1 in one and t2 in the
        # other (the paper explicitly allows m1 != m2).
        assert store.covers_both(5.0, 25.0)
        assert not store.covers_both(5.0, 15.0)

    def test_different_counters_do_not_combine(self):
        from repro.leader.enhanced import _SupportStore

        store = _SupportStore()
        store.add(LeaderLease(1, 0.0, 10.0))
        store.add(LeaderLease(2, 20.0, 30.0))
        assert not store.covers_both(5.0, 25.0)

    def test_overlapping_same_counter_merge(self):
        from repro.leader.enhanced import _SupportStore

        store = _SupportStore()
        store.add(LeaderLease(1, 0.0, 10.0))
        store.add(LeaderLease(1, 8.0, 20.0))
        assert store.covers_both(1.0, 19.0)
