"""Tests for the Omega failure detectors."""

from repro.leader.omega import HeartbeatOmega, OracleOmega
from repro.sim.clocks import ClockModel
from repro.sim.core import Simulator
from repro.sim.latency import FixedDelay
from repro.sim.network import Network
from repro.sim.process import Process

import pytest


class OmegaHost(Process):
    """Minimal host that feeds all messages to its detector."""

    def __init__(self, *args):
        super().__init__(*args)
        self.omega = None

    def on_message(self, src, msg):
        assert self.omega.handle(src, msg)


def build(n=4, period=10.0, timeout=35.0):
    sim = Simulator(seed=5)
    clocks = ClockModel(n, epsilon=1.0, rng=sim.fork_rng("clocks"))
    net = Network(sim, delta=5.0, post_gst_delay=FixedDelay(2.0))
    hosts = [OmegaHost(pid, sim, net, clocks) for pid in range(n)]
    for host in hosts:
        host.omega = HeartbeatOmega(host, period=period, timeout=timeout)
        host.omega.start()
    return sim, hosts


def test_converges_to_smallest_pid():
    sim, hosts = build()
    sim.run_for(100.0)
    assert all(h.omega.leader() == 0 for h in hosts)


def test_failover_to_next_pid():
    sim, hosts = build()
    sim.run_for(100.0)
    hosts[0].crash()
    sim.run_for(100.0)
    assert all(h.omega.leader() == 1 for h in hosts if not h.crashed)


def test_cascaded_failover():
    sim, hosts = build()
    sim.run_for(100.0)
    hosts[0].crash()
    hosts[1].crash()
    sim.run_for(150.0)
    assert all(h.omega.leader() == 2 for h in hosts if not h.crashed)


def test_recovered_process_reclaims_leadership():
    sim, hosts = build()
    sim.run_for(100.0)
    hosts[0].crash()
    sim.run_for(100.0)
    hosts[0].recover()
    hosts[0].omega.start()
    sim.run_for(100.0)
    assert all(h.omega.leader() == 0 for h in hosts if not h.crashed)


def test_partitioned_process_trusts_itself():
    sim, hosts = build()
    net = hosts[0].net
    sim.run_for(100.0)
    net.isolate(3, start=sim.now)
    sim.run_for(100.0)
    # Process 3 hears nobody: considers itself leader (pre-convergence
    # behaviour allowed by Omega).
    assert hosts[3].omega.leader() == 3
    assert hosts[0].omega.leader() == 0


def test_timeout_must_exceed_period():
    sim, hosts = build()
    with pytest.raises(ValueError):
        HeartbeatOmega(hosts[0], period=10.0, timeout=5.0)


def test_oracle_omega():
    sim = Simulator()
    clocks = ClockModel(2, epsilon=0.0)
    net = Network(sim, delta=5.0)
    hosts = [OmegaHost(pid, sim, net, clocks) for pid in range(2)]
    current = {"leader": 1}
    for host in hosts:
        host.omega = OracleOmega(host, lambda _pid: current["leader"])
        host.omega.start()
    assert hosts[0].omega.leader() == 1
    current["leader"] = 0
    assert hosts[1].omega.leader() == 0
