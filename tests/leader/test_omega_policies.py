"""Tests for the sticky and preferred Omega policies."""

import pytest

from repro.leader.omega import PreferredOmega, StickyOmega
from repro.sim.clocks import ClockModel
from repro.sim.core import Simulator
from repro.sim.latency import FixedDelay
from repro.sim.network import Network
from repro.sim.process import Process


class OmegaHost(Process):
    def __init__(self, *args):
        super().__init__(*args)
        self.omega = None

    def on_message(self, src, msg):
        self.omega.handle(src, msg)


def build(factory, n=4):
    sim = Simulator(seed=5)
    clocks = ClockModel(n, epsilon=1.0, rng=sim.fork_rng("clocks"))
    net = Network(sim, delta=5.0, post_gst_delay=FixedDelay(2.0))
    hosts = [OmegaHost(pid, sim, net, clocks) for pid in range(n)]
    for host in hosts:
        host.omega = factory(host)
        host.omega.start()

    def run_polling(duration, step=10.0):
        # Detector state machines advance when polled (the replica's
        # leader loop does this continuously in the full system).
        elapsed = 0.0
        while elapsed < duration:
            sim.run_for(step)
            elapsed += step
            for host in hosts:
                if not host.crashed:
                    host.omega.leader()

    sim.run_polling = run_polling
    return sim, hosts


def sticky(host):
    return StickyOmega(host, period=10.0, timeout=35.0)


def preferred(host):
    return PreferredOmega(host, period=10.0, timeout=35.0, preferred=3)


class TestStickyOmega:
    def test_converges_to_smallest_initially(self):
        sim, hosts = build(sticky)
        sim.run_polling(200.0)
        assert all(h.omega.leader() == 0 for h in hosts)

    def test_failover_to_next(self):
        sim, hosts = build(sticky)
        sim.run_polling(200.0)
        hosts[0].crash()
        sim.run_polling(300.0)
        assert all(h.omega.leader() == 1 for h in hosts if not h.crashed)

    def test_recovered_smaller_process_does_not_demote(self):
        sim, hosts = build(sticky)
        sim.run_polling(200.0)
        hosts[0].crash()
        sim.run_polling(300.0)
        hosts[0].recover()
        hosts[0].omega.start()
        sim.run_polling(400.0)
        # The base HeartbeatOmega would hand back to 0; sticky keeps 1.
        assert all(h.omega.leader() == 1 for h in hosts)

    def test_plain_heartbeat_omega_does_demote(self):
        from repro.leader.omega import HeartbeatOmega

        sim, hosts = build(
            lambda h: HeartbeatOmega(h, period=10.0, timeout=35.0)
        )
        sim.run_polling(200.0)
        hosts[0].crash()
        sim.run_polling(300.0)
        hosts[0].recover()
        hosts[0].omega.start()
        sim.run_polling(400.0)
        assert all(h.omega.leader() == 0 for h in hosts)

    def test_sticky_survives_repeated_failovers(self):
        sim, hosts = build(sticky)
        sim.run_polling(200.0)
        hosts[0].crash()
        sim.run_polling(300.0)
        hosts[1].crash()
        sim.run_polling(300.0)
        assert all(h.omega.leader() == 2 for h in hosts if not h.crashed)


class TestPreferredOmega:
    def test_prefers_designated_process(self):
        sim, hosts = build(preferred)
        sim.run_polling(200.0)
        assert all(h.omega.leader() == 3 for h in hosts)

    def test_falls_back_when_preferred_dies(self):
        sim, hosts = build(preferred)
        sim.run_polling(200.0)
        hosts[3].crash()
        sim.run_polling(200.0)
        assert all(h.omega.leader() == 0 for h in hosts if not h.crashed)

    def test_returns_to_preferred_on_recovery(self):
        sim, hosts = build(preferred)
        sim.run_polling(200.0)
        hosts[3].crash()
        sim.run_polling(200.0)
        hosts[3].recover()
        hosts[3].omega.start()
        sim.run_polling(200.0)
        assert all(h.omega.leader() == 3 for h in hosts)


class TestWithChtCluster:
    def test_preferred_omega_places_the_leader(self):
        from repro.core.client import ChtCluster
        from repro.core.config import ChtConfig
        from repro.objects.kvstore import KVStoreSpec, get, put

        config = ChtConfig(n=5)
        cluster = ChtCluster(
            KVStoreSpec(), config, seed=3,
            omega_factory=lambda replica: PreferredOmega(
                replica, config.heartbeat_period,
                config.heartbeat_timeout, preferred=4,
            ),
        )
        cluster.start()
        leader = cluster.run_until_leader()
        assert leader.pid == 4
        assert cluster.execute(0, put("x", 1)) is None
        assert cluster.execute(2, get("x")) == 1

    def test_sticky_omega_avoids_handback_churn(self):
        from repro.core.client import ChtCluster
        from repro.core.config import ChtConfig
        from repro.objects.kvstore import KVStoreSpec, get, put

        config = ChtConfig(n=5)
        cluster = ChtCluster(
            KVStoreSpec(), config, seed=3,
            omega_factory=lambda replica: StickyOmega(
                replica, config.heartbeat_period, config.heartbeat_timeout,
            ),
        )
        cluster.start()
        leader = cluster.run_until_leader()
        cluster.execute(0, put("x", 1))
        cluster.net.isolate(leader.pid, start=cluster.sim.now,
                            end=cluster.sim.now + 400.0)
        new_leader = cluster.run_until(
            lambda: cluster.leader() is not None
            and cluster.leader().pid != leader.pid,
            timeout=10_000.0,
        )
        assert new_leader
        survivor = cluster.leader()
        cluster.run(3000.0)  # the old leader is back and heartbeating
        # Sticky: leadership stays where it settled; no handback.
        assert cluster.leader().pid == survivor.pid
        assert cluster.execute(2, get("x"), timeout=10_000.0) == 1
