"""Tests for the Theorem 4.1 machinery."""

import pytest

from repro.core.client import ChtCluster
from repro.core.config import ChtConfig
from repro.lowerbound.shifting import (
    ReadInterval,
    SystemS,
    certificate_legal,
    fast_processes,
    run_construction,
    shift_certificate,
    theorem_alpha,
    theorem_alpha_sequential,
)
from repro.objects.register import RegisterSpec, read, write
from repro.sim.latency import FixedDelay


def test_alpha_formula():
    assert theorem_alpha(4.0, 10.0, 0.5) == 3.0  # min(4, 5) - 1
    assert theorem_alpha(10.0, 4.0, 0.0) == 2.0  # min(10, 2)
    assert theorem_alpha_sequential(4.0, 10.0) == 2.0


def test_system_s_alpha():
    assert SystemS(epsilon=4.0, delta=10.0, gamma=0.5).alpha == 3.0


def test_fast_processes():
    intervals = [
        ReadInterval(0, 0.0, 0.1, "v"),
        ReadInterval(0, 1.0, 1.1, "v"),
        ReadInterval(1, 0.0, 9.0, "v"),
    ]
    assert fast_processes(intervals, alpha=3.0) == [0]


def build_cht_in_system_s(system, seed=11):
    config = ChtConfig(n=system.n, delta=system.delta,
                       epsilon=system.epsilon)
    cluster = ChtCluster(
        RegisterSpec(initial=0), config, seed=seed,
        post_gst_delay=FixedDelay(system.delta / 2),
        clock_offsets=[system.epsilon / 2] * system.n,
    )
    cluster.start()
    return cluster


class TestConstructionAgainstCht:
    def test_at_most_one_fast_process(self):
        system = SystemS(n=5, epsilon=4.0, delta=10.0, gamma=0.5)
        cluster = build_cht_in_system_s(system)
        intervals = run_construction(
            cluster, write(1), read(), 0, 1, system, writer=2
        )
        fast = fast_processes(intervals, system.alpha)
        assert len(fast) <= 1  # Theorem 4.1: n-1 processes block

    def test_the_fast_process_is_the_leader(self):
        system = SystemS(n=5, epsilon=4.0, delta=10.0, gamma=0.5)
        cluster = build_cht_in_system_s(system)
        intervals = run_construction(
            cluster, write(1), read(), 0, 1, system, writer=2
        )
        fast = fast_processes(intervals, system.alpha)
        leader = cluster.leader()
        assert fast == [leader.pid]

    def test_blocking_within_3_delta_of_bound(self):
        system = SystemS(n=5, epsilon=4.0, delta=10.0, gamma=0.5)
        cluster = build_cht_in_system_s(system)
        intervals = run_construction(
            cluster, write(1), read(), 0, 1, system, writer=2
        )
        worst = max(iv.duration for iv in intervals)
        assert worst <= 3 * system.delta

    def test_every_process_eventually_reads_new_value(self):
        system = SystemS(n=3, epsilon=2.0, delta=8.0, gamma=0.5)
        cluster = build_cht_in_system_s(system)
        intervals = run_construction(
            cluster, write(1), read(), 0, 1, system, writer=0
        )
        new_readers = {iv.pid for iv in intervals if iv.value == 1}
        assert new_readers == set(range(system.n))


class TestShiftCertificate:
    def _two_fast_intervals(self, system):
        # Fabricate a run in which processes 0 and 1 both read fast:
        # exactly the situation the theorem rules out for real algorithms.
        return [
            ReadInterval(0, 10.0, 10.5, 0),   # Rp0 (last old read of 0)
            ReadInterval(1, 9.0, 9.5, 0),     # Rq0
            ReadInterval(1, 10.2, 10.7, 1),   # Rq1 (first new read of 1)
            ReadInterval(0, 12.0, 12.5, 1),
        ]

    def test_certificate_shows_violation(self):
        system = SystemS(n=5, epsilon=4.0, delta=10.0, gamma=0.5)
        intervals = self._two_fast_intervals(system)
        cert = shift_certificate(intervals, 0, 1, system, 0, 1)
        assert cert is not None
        assert cert.shift == pytest.approx(min(system.epsilon,
                                               system.delta / 2))
        assert cert.violates

    def test_certificate_is_legal_in_system_s(self):
        system = SystemS(n=5, epsilon=4.0, delta=10.0, gamma=0.5)
        cert = shift_certificate(self._two_fast_intervals(system),
                                 0, 1, system, 0, 1)
        assert certificate_legal(cert, system)

    def test_certificate_none_without_preconditions(self):
        system = SystemS()
        intervals = [ReadInterval(0, 0.0, 0.1, 0)]
        assert shift_certificate(intervals, 0, 1, system, 0, 1) is None

    def test_slow_reads_do_not_violate(self):
        # If q's new-value read ends late (reads actually blocked), the
        # shifted start does not pass it: no contradiction.
        system = SystemS(n=5, epsilon=4.0, delta=10.0, gamma=0.5)
        intervals = [
            ReadInterval(0, 10.0, 10.5, 0),
            ReadInterval(1, 9.0, 9.5, 0),
            ReadInterval(1, 10.2, 25.0, 1),  # blocked for >> alpha
        ]
        cert = shift_certificate(intervals, 0, 1, system, 0, 1)
        assert cert is not None
        assert not cert.violates
