"""ClusterSpec: serialization round-trips, address math, validation."""

import sys

import pytest

from repro.net.config import (CLIENT_PID_BASE, ClusterSpec, make_object_spec,
                              net_default_config)


def make_spec(**kwargs):
    defaults = dict(
        n=3,
        num_leaseholders=2,
        addresses=[f"127.0.0.1:{7700 + i}" for i in range(5)],
        seed=9,
        epoch=123.0,
    )
    defaults.update(kwargs)
    return ClusterSpec(**defaults)


def test_pid_layout_and_addresses():
    spec = make_spec()
    assert list(spec.replica_pids) == [0, 1, 2]
    assert list(spec.leaseholder_pids) == [3, 4]
    assert spec.address(4) == ("127.0.0.1", 7704)
    peers = spec.peer_map(exclude=1)
    assert 1 not in peers and len(peers) == 4
    assert CLIENT_PID_BASE > 5


def test_address_count_is_validated():
    with pytest.raises(ValueError, match="addresses"):
        make_spec(addresses=["127.0.0.1:7700"])


def test_config_n_must_match():
    with pytest.raises(ValueError, match="config.n"):
        make_spec(config=net_default_config(5))


def test_json_round_trip(tmp_path):
    spec = make_spec(storage_dir=str(tmp_path / "d"))
    spec.config.batch_window = 2.5
    path = tmp_path / "cluster.json"
    spec.dump(path)
    loaded = ClusterSpec.load(path)
    assert loaded.to_dict() == spec.to_dict()
    assert loaded.config.batch_window == 2.5
    assert loaded.config.delta == spec.config.delta
    assert loaded.storage_path(1) is not None
    assert loaded.storage_path(1).name == "replica-1"


def test_toml_load_is_gated_by_interpreter(tmp_path):
    path = tmp_path / "cluster.toml"
    path.write_text(
        'n = 3\nnum_leaseholders = 0\n'
        'addresses = ["127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3"]\n'
        'object = "counter"\n'
    )
    if sys.version_info >= (3, 11):
        spec = ClusterSpec.load(path)
        assert spec.object_name == "counter"
        assert spec.n == 3
    else:  # pragma: no cover - 3.10 CI lane
        with pytest.raises(RuntimeError, match="tomllib"):
            ClusterSpec.load(path)


def test_object_registry():
    assert make_object_spec("kv").__class__.__name__ == "KVStoreSpec"
    assert make_object_spec("counter").__class__.__name__ == "CounterSpec"
    with pytest.raises(ValueError, match="unknown replicated object"):
        make_object_spec("queue-of-doom")
