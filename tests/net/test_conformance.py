"""Transport-conformance battery: one contract, every runtime.

Each test here states a property of the :class:`repro.net.runtime
.Runtime` contract — delivery, FIFO per ordered pair, timer ordering
and cancellation, deterministic RNG streams, self-send rejection,
disconnect/reconnect recovery — and runs it against both substrates
through one parametrized harness:

* ``sim`` — :class:`SimRuntime` over a ``Simulator`` + ``Network``
  with zero clock skew and no faults;
* ``asyncio`` — one :class:`AsyncioRuntime` per pid, real loopback TCP
  between them, each on its own event-loop thread.

The battery is what keeps the backends from drifting: a new runtime
earns its place by passing this file unchanged.
"""

import threading
import time
from dataclasses import dataclass

import pytest

from repro.net.asyncio_rt import AsyncioRuntime
from repro.net.launch import free_ports
from repro.net.runtime import SimRuntime
from repro.sim.clocks import ClockModel
from repro.sim.core import Simulator
from repro.sim.network import Network
from repro.sim.process import Process

N = 3  # processes per harness


@dataclass(frozen=True)
class Note:
    """Picklable test message."""

    seq: int
    body: str = ""

    category = "test"


class Recorder(Process):
    """Records every delivered message."""

    def __init__(self, pid, runtime):
        super().__init__(pid, runtime=runtime)
        self.received = []

    def on_message(self, src, msg):
        self.received.append((src, msg))


class SimHarness:
    name = "sim"

    def __init__(self):
        self.sim = Simulator(seed=42)
        net = Network(self.sim, delta=5.0, gst=0.0)
        clocks = ClockModel(N, epsilon=0.0, rng=self.sim.fork_rng("clocks"))
        self.runtime = SimRuntime(self.sim, net, clocks)
        self.procs = {
            pid: Recorder(pid, self.runtime) for pid in range(N)
        }

    def call(self, pid, fn):
        """Run ``fn()`` in the pid's execution context; return result."""
        return fn()

    def run_until(self, predicate, timeout=5.0):
        # One wall second of budget maps to 10k sim-ms: far beyond any
        # delivery or timer in this battery.
        self.sim.run(until=self.sim.now + timeout * 10_000.0,
                     stop_when=predicate)
        return predicate()

    def restart(self, pid):
        """Sever and re-join pid: crash drops in-window deliveries,
        recover resumes."""
        self.procs[pid].crash()
        self.sim.run_for(50.0)
        self.procs[pid].recover()

    def close(self):
        pass


class AsyncioHarness:
    name = "asyncio"

    def __init__(self):
        ports = free_ports(N)
        self.addrs = {pid: ("127.0.0.1", ports[pid]) for pid in range(N)}
        self.runtimes = {}
        self.procs = {}
        for pid in range(N):
            self._start(pid)

    def _start(self, pid):
        rt = AsyncioRuntime(
            pid,
            peers={p: a for p, a in self.addrs.items() if p != pid},
            listen=self.addrs[pid],
            epoch=time.time(),
            seed=42,
            broadcast_pids=list(range(N)),
            reconnect_min=0.02,
            reconnect_max=0.2,
        )
        rt.start_background()
        self.runtimes[pid] = rt
        self.procs[pid] = rt.build(lambda: Recorder(pid, rt))

    def call(self, pid, fn):
        return self.runtimes[pid].call(fn)

    def run_until(self, predicate, timeout=5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.01)
        return predicate()

    def restart(self, pid):
        """Kill pid's runtime (connections drop) and bring up a fresh
        one on the same address; peers must redial."""
        self.runtimes[pid].close()
        time.sleep(0.05)
        self._start(pid)

    def close(self):
        for rt in self.runtimes.values():
            rt.close()


@pytest.fixture(params=["sim", "asyncio"])
def harness(request):
    h = SimHarness() if request.param == "sim" else AsyncioHarness()
    yield h
    h.close()


# ----------------------------------------------------------------------
# Delivery
# ----------------------------------------------------------------------
def test_directed_send_is_delivered(harness):
    harness.call(0, lambda: harness.procs[0].send(1, Note(1, "hello")))
    assert harness.run_until(lambda: len(harness.procs[1].received) == 1)
    src, msg = harness.procs[1].received[0]
    assert src == 0
    assert msg == Note(1, "hello")
    assert harness.procs[2].received == []


def test_broadcast_reaches_every_other_process(harness):
    harness.call(0, lambda: harness.procs[0].broadcast(Note(7)))
    assert harness.run_until(
        lambda: all(len(harness.procs[p].received) == 1 for p in (1, 2))
    )
    assert harness.procs[0].received == []  # never to self


def test_self_send_is_rejected(harness):
    rt = (harness.runtimes[0] if hasattr(harness, "runtimes")
          else harness.runtime)
    # Both substrates refuse self-sends (sim: SimulationError, asyncio:
    # ValueError) — the contract is "raises", message naming the self-send.
    with pytest.raises(Exception, match="self"):
        harness.call(0, lambda: rt.send(0, 0, Note(0)))


# ----------------------------------------------------------------------
# FIFO per ordered pair
# ----------------------------------------------------------------------
def test_fifo_per_pair(harness):
    count = 200

    def blast():
        for i in range(count):
            harness.procs[0].send(1, Note(i))

    harness.call(0, blast)
    assert harness.run_until(
        lambda: len(harness.procs[1].received) == count, timeout=15.0
    )
    seqs = [m.seq for _, m in harness.procs[1].received]
    assert seqs == list(range(count))


def test_fifo_holds_across_interleaved_pairs(harness):
    def blast(pid):
        def go():
            for i in range(50):
                harness.procs[pid].send(2, Note(i, body=f"from{pid}"))
        return go

    harness.call(0, blast(0))
    harness.call(1, blast(1))
    assert harness.run_until(
        lambda: len(harness.procs[2].received) == 100, timeout=15.0
    )
    for src in (0, 1):
        seqs = [m.seq for s, m in harness.procs[2].received if s == src]
        assert seqs == list(range(50))


# ----------------------------------------------------------------------
# Timers
# ----------------------------------------------------------------------
def test_timers_fire_in_deadline_order(harness):
    fired = []

    def arm():
        p = harness.procs[0]
        p.set_timer(120.0, lambda: fired.append("late"))
        p.set_timer(40.0, lambda: fired.append("early"))
        p.set_timer(80.0, lambda: fired.append("mid"))

    harness.call(0, arm)
    assert harness.run_until(lambda: len(fired) == 3)
    assert fired == ["early", "mid", "late"]


def test_equal_deadline_timers_fire_in_arming_order(harness):
    fired = []

    def arm():
        p = harness.procs[0]
        for tag in ("a", "b", "c"):
            p.set_timer(30.0, lambda t=tag: fired.append(t))

    harness.call(0, arm)
    assert harness.run_until(lambda: len(fired) == 3)
    assert fired == ["a", "b", "c"]


def test_cancelled_timer_never_fires(harness):
    fired = []

    def arm():
        p = harness.procs[0]
        handle = p.set_timer(30.0, lambda: fired.append("no"))
        handle.cancel()
        p.set_timer(90.0, lambda: fired.append("yes"))

    harness.call(0, arm)
    assert harness.run_until(lambda: fired == ["yes"])
    assert harness.run_until(lambda: True)  # settle
    assert fired == ["yes"]


def test_periodic_timer_repeats_until_crash(harness):
    ticks = []
    harness.call(
        0, lambda: harness.procs[0].every(25.0, lambda: ticks.append(1)))
    assert harness.run_until(lambda: len(ticks) >= 4)
    harness.call(0, harness.procs[0].crash)
    seen = len(ticks)
    harness.run_until(lambda: False, timeout=0.2)
    assert len(ticks) <= seen + 1  # at most one in-flight tick


# ----------------------------------------------------------------------
# RNG streams
# ----------------------------------------------------------------------
def test_rng_streams_are_deterministic_and_labelled(harness):
    def streams(rt):
        """First 8 draws of: label A (1st fork), A again (2nd fork), B."""
        return (
            [rt.fork_rng("conformance-stream").random() for _ in range(8)],
            [rt.fork_rng("conformance-stream").random() for _ in range(8)],
            [rt.fork_rng("other-stream").random() for _ in range(8)],
        )

    rt = (harness.runtimes[0] if hasattr(harness, "runtimes")
          else harness.runtime)
    a1, a2, b = streams(rt)
    # Repeated forks of one label are independent streams...
    assert a1 != a2
    assert a1 != b
    # ...and an identically-seeded runtime reproduces them exactly.
    if hasattr(harness, "runtimes"):
        fresh = AsyncioRuntime(99, peers={}, seed=42)
    else:
        fresh = SimRuntime(
            Simulator(seed=42),
            harness.runtime.net,
            harness.runtime.clocks,
        )
    assert streams(fresh) == (a1, a2, b)


# ----------------------------------------------------------------------
# Disconnect / reconnect
# ----------------------------------------------------------------------
def test_pair_recovers_after_disconnect(harness):
    harness.call(0, lambda: harness.procs[0].send(1, Note(0, "pre")))
    assert harness.run_until(lambda: len(harness.procs[1].received) == 1)

    harness.restart(1)

    # Messages sent into the outage window may be lost (both models
    # allow loss); *new* messages after recovery must flow again.  The
    # sender keeps sending, as every protocol retransmission loop does.
    def delivered_post():
        return any(
            m.body == "post" for _, m in harness.procs[1].received
        )

    ok = False
    for i in range(1, 40):
        harness.call(0, lambda i=i: harness.procs[0].send(1, Note(i, "post")))
        if harness.run_until(delivered_post, timeout=0.5):
            ok = True
            break
    assert ok, "pair never recovered after disconnect"
