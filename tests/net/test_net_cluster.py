"""End-to-end: real OS processes, real TCP, the same protocol code.

Each test boots a 3-replica (+1 leaseholder) cluster as subprocesses
via :class:`repro.net.launch.ClusterLauncher` and drives it with the
real :class:`repro.net.client.NetKV` client.  These are the
acceptance-criteria pins: linearizable-session writes, reads through
the leaseholder tier, exactly-once across a SIGKILL'd replica, and
durable recovery when every member is killed and restarted.
"""

import pytest

from repro.net.client import NetKV, OpTimeout
from repro.net.launch import ClusterLauncher, local_spec


def test_real_cluster_serves_writes_and_reads():
    spec = local_spec(n=3, num_leaseholders=1, seed=101)
    with ClusterLauncher(spec) as cluster:
        with NetKV(spec, client_seed=1) as kv:
            assert kv.put("a", "alpha", timeout=20) is None
            assert kv.get("a", timeout=20) == "alpha"
            assert kv.increment("n", 3, timeout=20) == 3
            assert kv.increment("n", 4, timeout=20) == 7
            assert kv.delete("a", timeout=20) is None
            assert kv.get("a", timeout=20) is None
            # The read path preferred the leaseholder tier: the session's
            # read targets start at the holder's pid.
            assert kv.session.read_targets[0] == 3


def test_sigkill_mid_stream_stays_exactly_once():
    spec = local_spec(n=3, num_leaseholders=1, seed=102)
    with ClusterLauncher(spec) as cluster:
        with NetKV(spec, client_seed=2) as kv:
            acked = 0
            for _ in range(5):
                kv.increment("k", 1, timeout=20)
                acked += 1
            # Crash-stop a replica (possibly the leader) mid-stream; the
            # survivors are a majority, so the stream must continue and
            # every retransmitted increment must apply exactly once.
            cluster.kill(0)
            for _ in range(5):
                kv.increment("k", 1, timeout=30)
                acked += 1
            assert kv.get("k", timeout=20) == acked == 10


def test_killed_members_recover_from_file_storage(tmp_path):
    spec = local_spec(n=3, num_leaseholders=0, seed=103,
                      storage_dir=str(tmp_path / "store"))
    with ClusterLauncher(spec) as cluster:
        with NetKV(spec, client_seed=3) as kv:
            for i in range(4):
                kv.increment("c", 1, timeout=20)
            kv.put("x", "survives", timeout=20)
        # SIGKILL every replica: all volatile state is gone; only the
        # WAL/snapshot files remain.
        for pid in spec.replica_pids:
            cluster.kill(pid)
        for pid in spec.replica_pids:
            cluster.restart(pid)
        with NetKV(spec, client_seed=4) as kv2:
            assert kv2.get("c", timeout=30) == 4
            assert kv2.get("x", timeout=20) == "survives"
            # And the recovered cluster still commits new writes.
            assert kv2.increment("c", 1, timeout=20) == 5


def test_client_times_out_against_a_dead_cluster():
    spec = local_spec(n=3, num_leaseholders=0, seed=104)
    with ClusterLauncher(spec) as cluster:
        with NetKV(spec, client_seed=5) as kv:
            kv.put("seed", 1, timeout=20)
            for pid in spec.replica_pids:
                cluster.kill(pid)
            # A majority is gone: the call must surface a prompt error
            # instead of spinning forever.
            with pytest.raises(OpTimeout):
                kv.put("seed", 2, timeout=2.0)
