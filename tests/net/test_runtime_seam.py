"""The runtime seam: sim path unchanged, runtime= path equivalent.

The heavyweight byte-identical pins live in the determinism suites
(tests/shard/test_parallel_determinism.py and friends), which run the
refactored Process over :class:`SimRuntime` and compare full event
traces.  This file pins the seam's local contracts:

* constructing a Process from ``(sim, net, clocks)`` and from an
  explicit ``runtime=SimRuntime(...)`` are the *same* code path — same
  RNG stream, same clock, same registration;
* the protocol classes accept ``runtime=`` and a hand-wired cluster on
  an explicit SimRuntime elects a leader and commits, identically to a
  facade-built cluster with the same seed.
"""

import pytest

from repro.core.config import ChtConfig
from repro.core.client import ChtCluster
from repro.core.replica import ChtReplica
from repro.net.runtime import SimRuntime
from repro.objects.kvstore import KVStoreSpec, get, put
from repro.sim.clocks import ClockModel
from repro.sim.core import Simulator
from repro.sim.network import Network
from repro.sim.process import Process


class Null(Process):
    def on_message(self, src, msg):
        pass


def make_triple(seed=5, n=3):
    sim = Simulator(seed=seed)
    net = Network(sim, delta=10.0, gst=0.0)
    clocks = ClockModel(n, epsilon=2.0, rng=sim.fork_rng("clocks"))
    return sim, net, clocks


def test_triple_and_runtime_construction_are_identical():
    sim1, net1, clocks1 = make_triple()
    p1 = Null(0, sim1, net1, clocks1)

    sim2, net2, clocks2 = make_triple()
    p2 = Null(0, runtime=SimRuntime(sim2, net2, clocks2))

    # Same forked RNG stream (same label, same seed)...
    assert [p1.rng.random() for _ in range(16)] == \
           [p2.rng.random() for _ in range(16)]
    # ...same clock object selection and time view...
    assert p1.local_time == p2.local_time
    assert p1.now == sim1.now and p2.now == sim2.now
    # ...and both are registered with their network.
    assert net1.processes[0] is p1
    assert net2.processes[0] is p2
    # The triple stays reachable for sim-only call sites either way.
    assert p2.sim is sim2 and p2.net is net2 and p2.clocks is clocks2


def test_process_requires_a_substrate():
    with pytest.raises(ValueError, match="runtime"):
        Null(0)


def test_hand_wired_cluster_on_explicit_simruntime_commits():
    """The server wiring path (protocol classes + runtime kwarg), on the
    simulator: elect, commit a write, read it back."""
    n = 3
    sim, net, clocks = make_triple(seed=9, n=n)
    rt = SimRuntime(sim, net, clocks)
    config = ChtConfig(n=n)
    spec = KVStoreSpec()
    replicas = [
        ChtReplica(pid, spec=spec, config=config, runtime=rt)
        for pid in range(n)
    ]
    for r in replicas:
        r.start()
    sim.run(until=5_000.0,
            stop_when=lambda: any(r.is_leader() for r in replicas))
    leader = next(r for r in replicas if r.is_leader())
    fut = leader.submit_rmw(put("k", 123))
    sim.run(until=sim.now + 5_000.0, stop_when=lambda: fut.done)
    assert fut.done
    read = leader.submit_read(get("k"))
    sim.run(until=sim.now + 5_000.0, stop_when=lambda: read.done)
    assert read.value == 123


def test_facade_runs_reproduce_exactly_across_the_seam():
    """Same seed, same workload, twice through the facade: identical
    operation history timestamps (the facade now builds every process
    over SimRuntime, so this pins the wrapped hot path end to end)."""

    def run_once():
        cluster = ChtCluster(
            KVStoreSpec(), ChtConfig(n=3), seed=31, num_clients=2
        ).start()
        cluster.run_until_leader()
        futs = []
        for i in range(5):  # one RMW in flight per session at a time
            fut = cluster.submit(3, put("x", i))
            assert cluster.run_until(lambda: fut.done)
            futs.append(fut)
        futs.append(cluster.submit(4, get("x")))
        assert cluster.run_until(lambda: all(f.done for f in futs))
        return [
            (op.op_id, op.invoked_at, op.responded_at, repr(op.response))
            for op in cluster.stats.completed()
        ]

    assert run_once() == run_once()
