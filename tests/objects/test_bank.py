"""Tests for the bank-accounts object."""

import pytest

from repro.objects.bank import (
    BankSpec,
    balance,
    deposit,
    total,
    transfer,
    withdraw,
)
from repro.objects.spec import definition_conflicts


@pytest.fixture
def spec():
    return BankSpec({"a": 100, "b": 50})


def test_balance(spec):
    state = spec.initial_state()
    assert spec.apply(state, balance("a"))[1] == 100
    assert spec.apply(state, balance("missing"))[1] == 0


def test_total(spec):
    assert spec.apply(spec.initial_state(), total())[1] == 150


def test_deposit(spec):
    state, _ = spec.apply(spec.initial_state(), deposit("a", 25))
    assert spec.apply(state, balance("a"))[1] == 125


def test_withdraw_sufficient(spec):
    state, amount = spec.apply(spec.initial_state(), withdraw("a", 60))
    assert amount == 60
    assert spec.apply(state, balance("a"))[1] == 40


def test_withdraw_insufficient(spec):
    state, amount = spec.apply(spec.initial_state(), withdraw("b", 999))
    assert amount == 0
    assert spec.apply(state, balance("b"))[1] == 50


def test_transfer_success_conserves_total(spec):
    state, ok = spec.apply(spec.initial_state(), transfer("a", "b", 30))
    assert ok is True
    assert spec.apply(state, balance("a"))[1] == 70
    assert spec.apply(state, balance("b"))[1] == 80
    assert spec.apply(state, total())[1] == 150


def test_transfer_insufficient_funds(spec):
    state, ok = spec.apply(spec.initial_state(), transfer("b", "a", 999))
    assert ok is False
    assert spec.apply(state, total())[1] == 150


def test_transfer_to_self_rejected(spec):
    state, ok = spec.apply(spec.initial_state(), transfer("a", "a", 10))
    assert ok is False


def test_transfer_to_new_account(spec):
    state, ok = spec.apply(spec.initial_state(), transfer("a", "c", 10))
    assert ok is True
    assert spec.apply(state, balance("c"))[1] == 10


def test_is_read_classification(spec):
    assert spec.is_read(balance("a"))
    assert spec.is_read(total())
    assert not spec.is_read(deposit("a", 1))
    assert not spec.is_read(withdraw("a", 1))
    assert not spec.is_read(transfer("a", "b", 1))


def test_conflicts_account_granular(spec):
    assert spec.conflicts(balance("a"), deposit("a", 1))
    assert not spec.conflicts(balance("a"), deposit("b", 1))
    assert spec.conflicts(balance("a"), transfer("a", "b", 1))
    assert spec.conflicts(balance("b"), transfer("a", "b", 1))
    assert not spec.conflicts(balance("c"), transfer("a", "b", 1))


def test_total_conflicts_with_deposits_not_transfers(spec):
    assert spec.conflicts(total(), deposit("a", 1))
    assert spec.conflicts(total(), withdraw("a", 1))
    # Transfers conserve the total, so a total() read never conflicts.
    assert not spec.conflicts(total(), transfer("a", "b", 1))


def test_total_transfer_nonconflict_matches_definition(spec):
    states = [spec.initial_state()]
    for op in (deposit("c", 5), transfer("a", "b", 10)):
        states.append(spec.apply(states[-1], op)[0])
    assert not definition_conflicts(spec, total(), transfer("a", "b", 7),
                                    states=states)
    assert definition_conflicts(spec, total(), deposit("a", 7),
                                states=states)
