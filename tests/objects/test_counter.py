"""Tests for the counter object."""

from repro.objects.counter import CounterSpec, add, increment, value
from repro.objects.spec import definition_conflicts


def test_value_reads_state():
    spec = CounterSpec(initial=3)
    assert spec.apply(3, value()) == (3, 3)


def test_increment_returns_new_value():
    spec = CounterSpec()
    assert spec.apply(0, increment()) == (1, 1)


def test_add_negative():
    spec = CounterSpec()
    assert spec.apply(10, add(-4)) == (6, 6)


def test_is_read_classification():
    spec = CounterSpec()
    assert spec.is_read(value())
    assert not spec.is_read(increment())
    assert spec.is_read(add(0))  # add(0) never changes state


def test_conflicts_match_definition():
    spec = CounterSpec(initial=0)
    states = list(spec.enumerate_states())
    for rmw in (increment(), add(0), add(-2), add(5)):
        assert spec.conflicts(value(), rmw) == definition_conflicts(
            spec, value(), rmw, states=states
        )


def test_unknown_operation_rejected():
    from repro.objects.spec import Operation

    spec = CounterSpec()
    try:
        spec.apply(0, Operation("bogus"))
    except ValueError:
        pass
    else:
        raise AssertionError("expected ValueError")
