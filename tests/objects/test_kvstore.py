"""Tests for the key-value store object."""

import pytest

from repro.objects.kvstore import (
    KVStoreSpec,
    delete,
    get,
    increment,
    put,
    scan,
)
from repro.objects.spec import definition_conflicts


@pytest.fixture
def spec():
    return KVStoreSpec()


def test_get_missing_key(spec):
    state = spec.initial_state()
    _, value = spec.apply(state, get("k"))
    assert value is None


def test_put_then_get(spec):
    state = spec.initial_state()
    state, _ = spec.apply(state, put("k", 1))
    _, value = spec.apply(state, get("k"))
    assert value == 1


def test_put_does_not_mutate_old_state(spec):
    s0 = spec.initial_state()
    s1, _ = spec.apply(s0, put("k", 1))
    assert spec.apply(s0, get("k"))[1] is None
    assert spec.apply(s1, get("k"))[1] == 1


def test_delete(spec):
    state = spec.initial_state()
    state, _ = spec.apply(state, put("k", 1))
    state, _ = spec.apply(state, delete("k"))
    assert spec.apply(state, get("k"))[1] is None


def test_delete_missing_is_noop_state(spec):
    s0 = spec.initial_state()
    s1, _ = spec.apply(s0, delete("nope"))
    assert s0 == s1


def test_scan_returns_sorted_items(spec):
    state = spec.initial_state()
    state, _ = spec.apply(state, put("b", 2))
    state, _ = spec.apply(state, put("a", 1))
    _, items = spec.apply(state, scan())
    assert items == (("a", 1), ("b", 2))


def test_increment(spec):
    state = spec.initial_state()
    state, value = spec.apply(state, increment("c", 5))
    assert value == 5
    state, value = spec.apply(state, increment("c"))
    assert value == 6


def test_initial_contents():
    spec = KVStoreSpec({"a": 1})
    assert spec.apply(spec.initial_state(), get("a"))[1] == 1


def test_is_read_classification(spec):
    assert spec.is_read(get("k"))
    assert spec.is_read(scan())
    assert not spec.is_read(put("k", 1))
    assert not spec.is_read(delete("k"))
    assert not spec.is_read(increment("k"))


def test_key_granular_conflicts(spec):
    assert spec.conflicts(get("a"), put("a", 1))
    assert not spec.conflicts(get("a"), put("b", 1))
    assert spec.conflicts(get("a"), delete("a"))
    assert spec.conflicts(get("a"), increment("a"))
    assert spec.conflicts(scan(), put("anything", 1))


def test_conflicts_match_definition_on_samples(spec):
    states = [spec.initial_state()]
    for op in (put("a", 1), put("b", 2), put("a", 3)):
        states.append(spec.apply(states[-1], op)[0])
    for read_op in (get("a"), get("b"), scan()):
        for rmw in (put("a", 9), put("b", 9), delete("a"), increment("b")):
            exact = definition_conflicts(spec, read_op, rmw, states=states)
            assert spec.conflicts(read_op, rmw) or not exact


def test_state_hashable_and_equal(spec):
    s0 = spec.initial_state()
    s1, _ = spec.apply(s0, put("k", 1))
    s2, _ = spec.apply(s0, put("k", 1))
    assert s1 == s2
    assert hash(s1) == hash(s2)
    assert s1 != s0


def test_state_contains_len(spec):
    s, _ = spec.apply(spec.initial_state(), put("k", 1))
    assert "k" in s
    assert len(s) == 1


def test_written_key_helper(spec):
    assert KVStoreSpec.written_key(put("k", 1)) == "k"
    assert KVStoreSpec.written_key(delete("d")) == "d"


def test_unknown_operation_rejected(spec):
    from repro.objects.spec import Operation

    with pytest.raises(ValueError):
        spec.apply(spec.initial_state(), Operation("bogus"))


def test_enumerate_states_unsupported(spec):
    with pytest.raises(NotImplementedError):
        list(spec.enumerate_states())
