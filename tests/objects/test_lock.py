"""Tests for the lock object."""

from repro.objects.lock import LockSpec, acquire, owner, release
from repro.objects.spec import definition_conflicts


def test_initially_free():
    spec = LockSpec()
    assert spec.initial_state() is None
    assert spec.apply(None, owner()) == (None, None)


def test_acquire_free_lock():
    spec = LockSpec()
    state, ok = spec.apply(None, acquire("alice"))
    assert state == "alice"
    assert ok is True


def test_acquire_held_lock_fails():
    spec = LockSpec()
    state, ok = spec.apply("alice", acquire("bob"))
    assert state == "alice"
    assert ok is False


def test_reacquire_by_holder_succeeds():
    spec = LockSpec()
    state, ok = spec.apply("alice", acquire("alice"))
    assert state == "alice"
    assert ok is True


def test_release_by_holder():
    spec = LockSpec()
    state, ok = spec.apply("alice", release("alice"))
    assert state is None
    assert ok is True


def test_release_by_non_holder_fails():
    spec = LockSpec()
    state, ok = spec.apply("alice", release("bob"))
    assert state == "alice"
    assert ok is False


def test_is_read_classification():
    spec = LockSpec()
    assert spec.is_read(owner())
    assert not spec.is_read(acquire("a"))
    assert not spec.is_read(release("a"))


def test_conflicts_match_definition():
    spec = LockSpec(holders=["a", "b"])
    states = list(spec.enumerate_states())
    for rmw in (acquire("a"), release("a"), acquire("b")):
        exact = definition_conflicts(spec, owner(), rmw, states=states)
        assert spec.conflicts(owner(), rmw) or not exact
        assert spec.conflicts(owner(), rmw) == exact


def test_enumerate_requires_holders():
    spec = LockSpec()
    try:
        list(spec.enumerate_states())
    except NotImplementedError:
        pass
    else:
        raise AssertionError("expected NotImplementedError")
