"""Tests for the FIFO queue object."""

from repro.objects.queue import QueueSpec, dequeue, enqueue, peek, size
from repro.objects.spec import definition_conflicts


def test_initially_empty():
    spec = QueueSpec()
    assert spec.initial_state() == ()
    assert spec.apply((), peek()) == ((), None)
    assert spec.apply((), size()) == ((), 0)


def test_enqueue_dequeue_fifo():
    spec = QueueSpec()
    state, _ = spec.apply((), enqueue("a"))
    state, _ = spec.apply(state, enqueue("b"))
    state, head = spec.apply(state, dequeue())
    assert head == "a"
    state, head = spec.apply(state, dequeue())
    assert head == "b"
    assert state == ()


def test_dequeue_empty_returns_none():
    spec = QueueSpec()
    state, head = spec.apply((), dequeue())
    assert state == ()
    assert head is None


def test_peek_does_not_remove():
    spec = QueueSpec()
    state, _ = spec.apply((), enqueue("x"))
    state2, head = spec.apply(state, peek())
    assert head == "x"
    assert state2 == state


def test_is_read_classification():
    spec = QueueSpec()
    assert spec.is_read(peek())
    assert spec.is_read(size())
    assert not spec.is_read(enqueue("a"))
    assert not spec.is_read(dequeue())


def test_conflicts_match_definition():
    spec = QueueSpec(items=["a", "b"], max_enumerated_len=2)
    states = list(spec.enumerate_states())
    for read_op in (peek(), size()):
        for rmw in (enqueue("a"), dequeue()):
            exact = definition_conflicts(spec, read_op, rmw, states=states)
            assert spec.conflicts(read_op, rmw) or not exact


def test_enumerate_states_count():
    spec = QueueSpec(items=["a", "b"], max_enumerated_len=2)
    # lengths 0,1,2 over 2 items: 1 + 2 + 4 = 7 states
    assert len(list(spec.enumerate_states())) == 7
