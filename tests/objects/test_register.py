"""Tests for the register object."""

from repro.objects.register import RegisterSpec, cas, read, write
from repro.objects.spec import definition_conflicts


def test_initial_state():
    assert RegisterSpec(initial=7).initial_state() == 7


def test_read_returns_state():
    spec = RegisterSpec(initial=3)
    state, value = spec.apply(3, read())
    assert (state, value) == (3, 3)


def test_write_sets_state():
    spec = RegisterSpec()
    state, value = spec.apply(0, write("x"))
    assert state == "x"
    assert value is None


def test_cas_success_and_failure():
    spec = RegisterSpec()
    state, old = spec.apply(1, cas(1, 2))
    assert (state, old) == (2, 1)
    state, old = spec.apply(5, cas(1, 2))
    assert (state, old) == (5, 5)


def test_is_read_classification():
    spec = RegisterSpec()
    assert spec.is_read(read())
    assert not spec.is_read(write(0))
    assert not spec.is_read(cas(0, 1))
    assert spec.is_read(cas(1, 1))  # degenerate CAS never changes state


def test_conflicts_matches_definition_on_finite_domain():
    domain = [0, 1, 2]
    spec = RegisterSpec(initial=0, domain=domain)
    rmws = [write(0), write(1), cas(0, 1), cas(1, 1), cas(2, 0)]
    for rmw in rmws:
        fast = spec.conflicts(read(), rmw)
        exact = definition_conflicts(spec, read(), rmw)
        # The fast predicate may over-approximate but never under-.
        assert fast or not exact
        if rmw.name == "cas":
            assert fast == exact


def test_unknown_operation_rejected():
    spec = RegisterSpec()
    try:
        spec.apply(0, read().__class__("bogus"))
    except ValueError as err:
        assert "bogus" in str(err)
    else:
        raise AssertionError("expected ValueError")
