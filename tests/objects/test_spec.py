"""Tests for the object abstraction and the generic conflict definition."""

import pytest

from repro.objects.register import RegisterSpec, cas, read, write
from repro.objects.spec import NOOP, Operation, OpInstance, definition_conflicts


class TestOperation:
    def test_hashable_and_equal(self):
        assert Operation("get", ("k",)) == Operation("get", ("k",))
        assert hash(Operation("get", ("k",))) == hash(Operation("get", ("k",)))
        assert Operation("get", ("a",)) != Operation("get", ("b",))

    def test_repr(self):
        assert repr(Operation("put", ("k", 1))) == "put('k', 1)"


class TestOpInstance:
    def test_orders_by_op_id(self):
        a = OpInstance((0, 1), Operation("w"))
        b = OpInstance((0, 2), Operation("w"))
        c = OpInstance((1, 1), Operation("w"))
        assert sorted([c, b, a]) == [a, b, c]

    def test_batch_application_order_is_deterministic(self):
        ops = [OpInstance((p, i), Operation("w", (p, i)))
               for p in (2, 0, 1) for i in (3, 1)]
        assert [o.op_id for o in sorted(ops)] == [
            (0, 1), (0, 3), (1, 1), (1, 3), (2, 1), (2, 3)
        ]


class TestNoop:
    def test_noop_has_no_effect(self):
        spec = RegisterSpec(initial=5)
        state, response = spec.apply_any(5, NOOP)
        assert state == 5
        assert response is None

    def test_apply_any_dispatches_regular_ops(self):
        spec = RegisterSpec(initial=0)
        state, response = spec.apply_any(0, write(3))
        assert state == 3


class TestDefinitionConflicts:
    def test_read_conflicts_with_write(self):
        spec = RegisterSpec(initial=0, domain=[0, 1])
        assert definition_conflicts(spec, read(), write(1))

    def test_noop_never_conflicts(self):
        spec = RegisterSpec(initial=0, domain=[0, 1])
        assert not definition_conflicts(spec, read(), NOOP)

    def test_degenerate_cas_does_not_conflict(self):
        spec = RegisterSpec(initial=0, domain=[0, 1])
        assert not definition_conflicts(spec, read(), cas(1, 1))

    def test_explicit_states_override(self):
        spec = RegisterSpec(initial=0)
        # Over the single state {1}, write(1) cannot change what a read
        # returns.
        assert not definition_conflicts(spec, read(), write(1), states=[1])
        assert definition_conflicts(spec, read(), write(1), states=[0])

    def test_unbounded_spec_requires_states(self):
        spec = RegisterSpec(initial=0)
        with pytest.raises(NotImplementedError):
            definition_conflicts(spec, read(), write(1))


class TestFingerprintContract:
    """fingerprint() must be hashable and injective over behaviourally
    distinct states — the checker memoizes on it, so a collision between
    different states would be an unsound verdict, not a slowdown."""

    def test_counter_and_register_are_identity(self):
        from repro.objects.counter import CounterSpec
        assert CounterSpec().fingerprint(7) == 7
        assert RegisterSpec(initial=0).fingerprint("x") == "x"

    def test_unhashable_register_state_digests_by_typed_repr(self):
        spec = RegisterSpec(initial=0)
        fp = spec.fingerprint([1, 2])
        hash(fp)
        assert fp != spec.fingerprint((1, 2))
        assert fp == spec.fingerprint([1, 2])

    def test_lock_fingerprint_distinguishes_holders(self):
        from repro.objects.lock import LockSpec, acquire
        spec = LockSpec()
        free = spec.initial_state()
        held, _ = spec.apply(free, acquire("a"))
        assert spec.fingerprint(free) != spec.fingerprint(held)
        hash(spec.fingerprint(["unhashable", "holder"]))

    def test_queue_fingerprint_tracks_order(self):
        from repro.objects.queue import QueueSpec, enqueue
        spec = QueueSpec()
        ab, _ = spec.apply(spec.apply((), enqueue("a"))[0], enqueue("b"))
        ba, _ = spec.apply(spec.apply((), enqueue("b"))[0], enqueue("a"))
        assert spec.fingerprint(ab) != spec.fingerprint(ba)
        hash(spec.fingerprint(([1],)))  # unhashable element fallback

    def test_bank_and_kv_fingerprints_are_content_addressed(self):
        from repro.objects.bank import BankSpec, deposit
        from repro.objects.kvstore import KVStoreSpec, put
        bank = BankSpec()
        s1, _ = bank.apply(bank.initial_state(), deposit("a", 5))
        s2, _ = bank.apply(bank.initial_state(), deposit("a", 5))
        assert bank.fingerprint(s1) == bank.fingerprint(s2)
        hash(bank.fingerprint(s1))
        kv = KVStoreSpec()
        k1, _ = kv.apply(kv.initial_state(), put("k", 1))
        assert kv.fingerprint(k1) != kv.fingerprint(kv.initial_state())


class TestPartitionKeyContract:
    """partition_key() gates both P-compositional checking and shard
    routing; None must mean 'couples more than one sub-object'."""

    def test_kvstore_routes_by_key_except_scan(self):
        from repro.objects.kvstore import KVStoreSpec, get, put, scan
        spec = KVStoreSpec()
        assert spec.partition_key(get("k")) == "k"
        assert spec.partition_key(put("k", 1)) == "k"
        assert spec.partition_key(scan()) is None

    def test_bank_partitions_single_account_ops_only(self):
        from repro.objects.bank import (
            BankSpec, balance, deposit, total, transfer, withdraw,
        )
        spec = BankSpec()
        assert spec.partition_key(balance("a")) == "a"
        assert spec.partition_key(deposit("a", 1)) == "a"
        assert spec.partition_key(withdraw("a", 1)) == "a"
        assert spec.partition_key(transfer("a", "b", 1)) is None
        assert spec.partition_key(total()) is None

    def test_lock_queue_counter_register_never_partition(self):
        from repro.objects.counter import CounterSpec, increment
        from repro.objects.lock import LockSpec, acquire
        from repro.objects.queue import QueueSpec, enqueue
        assert LockSpec().partition_key(acquire("a")) is None
        assert QueueSpec().partition_key(enqueue(1)) is None
        assert CounterSpec().partition_key(increment()) is None
        assert RegisterSpec(initial=0).partition_key(write(1)) is None
