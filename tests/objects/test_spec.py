"""Tests for the object abstraction and the generic conflict definition."""

import pytest

from repro.objects.register import RegisterSpec, cas, read, write
from repro.objects.spec import NOOP, Operation, OpInstance, definition_conflicts


class TestOperation:
    def test_hashable_and_equal(self):
        assert Operation("get", ("k",)) == Operation("get", ("k",))
        assert hash(Operation("get", ("k",))) == hash(Operation("get", ("k",)))
        assert Operation("get", ("a",)) != Operation("get", ("b",))

    def test_repr(self):
        assert repr(Operation("put", ("k", 1))) == "put('k', 1)"


class TestOpInstance:
    def test_orders_by_op_id(self):
        a = OpInstance((0, 1), Operation("w"))
        b = OpInstance((0, 2), Operation("w"))
        c = OpInstance((1, 1), Operation("w"))
        assert sorted([c, b, a]) == [a, b, c]

    def test_batch_application_order_is_deterministic(self):
        ops = [OpInstance((p, i), Operation("w", (p, i)))
               for p in (2, 0, 1) for i in (3, 1)]
        assert [o.op_id for o in sorted(ops)] == [
            (0, 1), (0, 3), (1, 1), (1, 3), (2, 1), (2, 3)
        ]


class TestNoop:
    def test_noop_has_no_effect(self):
        spec = RegisterSpec(initial=5)
        state, response = spec.apply_any(5, NOOP)
        assert state == 5
        assert response is None

    def test_apply_any_dispatches_regular_ops(self):
        spec = RegisterSpec(initial=0)
        state, response = spec.apply_any(0, write(3))
        assert state == 3


class TestDefinitionConflicts:
    def test_read_conflicts_with_write(self):
        spec = RegisterSpec(initial=0, domain=[0, 1])
        assert definition_conflicts(spec, read(), write(1))

    def test_noop_never_conflicts(self):
        spec = RegisterSpec(initial=0, domain=[0, 1])
        assert not definition_conflicts(spec, read(), NOOP)

    def test_degenerate_cas_does_not_conflict(self):
        spec = RegisterSpec(initial=0, domain=[0, 1])
        assert not definition_conflicts(spec, read(), cas(1, 1))

    def test_explicit_states_override(self):
        spec = RegisterSpec(initial=0)
        # Over the single state {1}, write(1) cannot change what a read
        # returns.
        assert not definition_conflicts(spec, read(), write(1), states=[1])
        assert definition_conflicts(spec, read(), write(1), states=[0])

    def test_unbounded_spec_requires_states(self):
        spec = RegisterSpec(initial=0)
        with pytest.raises(NotImplementedError):
            definition_conflicts(spec, read(), write(1))
