"""Round-trip tests for the JSONL and Perfetto trace exporters."""

import json

import pytest

from repro.obs.export import export_jsonl, export_perfetto, load_jsonl
from repro.obs.spans import ObsContext
from repro.sim.core import Simulator


def _small_obs():
    sim = Simulator(seed=3)
    obs = ObsContext(sim)
    span = obs.tracer.begin("batch.commit", "batch", pid=0, j=1, size=2)
    sim.call_later(7.5, lambda: None)
    sim.run()
    span.mark("acked_at", 7.5)
    obs.tracer.close(span, "committed")
    obs.tracer.instant("batch.applied", "batch", 1, j=1)
    obs.tracer.begin("read", "read", pid=2)  # left open on purpose
    obs.registry.counter("commits_total", pid=0).inc()
    return sim, obs


def test_jsonl_round_trip(tmp_path):
    _, obs = _small_obs()
    path = str(tmp_path / "trace.jsonl")
    written = export_jsonl(obs, path)
    # 2 spans + 1 instant + the metrics snapshot record.
    assert written == 4

    trace = load_jsonl(path)
    assert len(trace.spans) == 2
    assert len(trace.instants) == 1
    committed = [s for s in trace.spans if s.status == "committed"]
    (span,) = committed
    assert span.name == "batch.commit"
    assert span.start == 0.0 and span.end == 7.5
    assert span.attrs == {"j": 1, "size": 2, "acked_at": 7.5}
    (open_span,) = [s for s in trace.spans if s.open]
    assert open_span.name == "read"
    (inst,) = trace.instants
    assert inst.name == "batch.applied" and inst.ts == 7.5
    assert trace.metrics["counters"] == {"commits_total{pid=0}": 1.0}
    assert trace.metrics["trace"]["spans"] == 2


def test_jsonl_records_are_chronological(tmp_path):
    sim = Simulator(seed=0)
    obs = ObsContext(sim)
    sim.call_later(10.0, lambda: obs.tracer.instant("late", "t", 0))
    sim.run()
    obs.tracer.begin("span-at-10", "t", 0)
    # A span that started earlier must sort before the later instant even
    # though it was appended to a different buffer.
    early = obs.tracer.begin("early", "t", 0)
    early.start = 1.0
    path = str(tmp_path / "t.jsonl")
    export_jsonl(obs, path)
    with open(path) as fh:
        names = [json.loads(line)["name"]
                 for line in fh if json.loads(line)["type"] != "metrics"]
    assert names[0] == "early"


def test_jsonl_rejects_unknown_record_types(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type": "mystery"}\n')
    with pytest.raises(ValueError, match="unknown trace record type"):
        load_jsonl(str(path))


def test_perfetto_export_structure(tmp_path):
    _, obs = _small_obs()
    path = str(tmp_path / "trace.perfetto.json")
    written = export_perfetto(obs, path)
    with open(path) as fh:
        doc = json.load(fh)
    events = doc["traceEvents"]
    assert written == len(events)
    assert doc["displayTimeUnit"] == "ms"

    complete = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    meta = [e for e in events if e["ph"] == "M"]
    assert len(complete) == 2 and len(instants) == 1

    batch = next(e for e in complete if e["name"] == "batch.commit")
    # Sim time is ms; trace_event wants microseconds.
    assert batch["ts"] == 0.0 and batch["dur"] == 7500.0
    assert batch["tid"] == 0 and batch["pid"] == 0
    assert batch["args"]["status"] == "committed"

    # An open span exports with zero duration rather than being dropped.
    read = next(e for e in complete if e["name"] == "read")
    assert read["dur"] == 0.0

    # One thread_name metadata record per participating process.
    assert {e["tid"] for e in meta} == {0, 1, 2}
    assert all(e["args"]["name"] == f"process {e['tid']}" for e in meta)
