"""Unit tests for counters, gauges, and fixed-bucket histograms."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Histogram,
    MetricsRegistry,
)


class TestCounterAndGauge:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        c = registry.counter("commits_total", pid=0)
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        g = registry.gauge("applied_upto", pid=1)
        g.set(7)
        g.inc()
        g.dec(3)
        assert g.value == 5

    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("reads_total", pid=2)
        b = registry.counter("reads_total", pid=2)
        assert a is b
        # Different labels are a different series.
        assert registry.counter("reads_total", pid=3) is not a
        # Label order must not matter.
        assert registry.counter("x", a=1, b=2) is registry.counter(
            "x", b=2, a=1
        )


class TestHistogramBuckets:
    def test_edges_must_be_increasing(self):
        with pytest.raises(ValueError):
            Histogram("h", (), edges=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram("h", (), edges=())

    def test_bucket_edges_are_inclusive_upper_bounds(self):
        """Buckets are (lo, hi]: a value exactly on an edge lands in the
        bucket whose upper bound is that edge."""
        h = Histogram("h", (), edges=(1.0, 10.0, 100.0))
        h.observe(1.0)      # first bucket (<= 1.0)
        h.observe(1.0001)   # second bucket
        h.observe(10.0)     # still the second bucket
        h.observe(100.0)    # third bucket
        h.observe(100.5)    # overflow
        assert h.counts == [1, 2, 1, 1]
        assert h.count == 5
        assert h.min == 1.0
        assert h.max == 100.5

    def test_mean_and_extremes(self):
        h = Histogram("h", (), edges=(10.0, 20.0))
        for v in (2.0, 4.0, 6.0):
            h.observe(v)
        assert h.mean == pytest.approx(4.0)
        assert h.min == 2.0
        assert h.max == 6.0

    def test_empty_histogram(self):
        h = Histogram("h", (), edges=(1.0,))
        assert h.mean == 0.0
        assert h.percentile(50) == 0.0

    def test_percentile_endpoints_are_exact(self):
        h = Histogram("h", (), edges=list(DEFAULT_LATENCY_BUCKETS_MS))
        for v in (3.0, 7.0, 40.0, 90.0):
            h.observe(v)
        assert h.percentile(0) == pytest.approx(3.0, abs=1e-9)
        assert h.percentile(100) == pytest.approx(90.0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_percentile_interpolates_within_bucket_width(self):
        """Percentile error is bounded by the containing bucket width."""
        h = Histogram("h", (), edges=(10.0, 20.0, 50.0))
        values = [12.0, 13.0, 14.0, 18.0, 19.0, 42.0]
        for v in values:
            h.observe(v)
        p50 = h.percentile(50)
        assert 10.0 <= p50 <= 20.0  # the true median (14..18) lies here


class TestSnapshot:
    def test_snapshot_is_json_serializable_and_complete(self):
        registry = MetricsRegistry()
        registry.counter("commits_total", pid=0).inc(4)
        registry.gauge("depth").set(2)
        registry.histogram("lat_ms", buckets=(1.0, 10.0)).observe(3.0)
        snap = registry.snapshot()
        json.dumps(snap)  # must not raise
        assert snap["counters"]["commits_total{pid=0}"] == 4
        assert snap["gauges"]["depth"] == 2
        hist = snap["histograms"]["lat_ms"]
        assert hist["edges"] == [1.0, 10.0]
        assert hist["counts"] == [0, 1, 0]
        assert hist["count"] == 1
        assert hist["min"] == 3.0 and hist["max"] == 3.0

    def test_empty_histogram_snapshot_has_null_extremes(self):
        registry = MetricsRegistry()
        registry.histogram("lat_ms")
        hist = registry.snapshot()["histograms"]["lat_ms"]
        assert hist["min"] is None and hist["max"] is None

    def test_iteration_covers_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        registry.histogram("c")
        assert len(list(registry)) == 3
