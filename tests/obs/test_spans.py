"""Tracer behavior under simulated time: span ordering, nesting, and
finalization."""

import pytest

from repro.obs.spans import ObsContext, Tracer
from repro.sim.core import SimulationError, Simulator


def test_span_timestamps_come_from_sim_time():
    sim = Simulator(seed=1)
    tracer = Tracer(sim)
    sim.call_later(5.0, lambda: None)
    span = tracer.begin("batch.commit", "batch", pid=0, j=1)
    assert span.start == 0.0 and span.open and span.duration is None
    sim.run()
    assert sim.now == 5.0
    tracer.close(span, "committed")
    assert span.end == 5.0
    assert span.duration == 5.0
    assert span.status == "committed"


def test_nested_spans_preserve_ordering():
    """Spans opened later start later (or equal), and a child closed
    before its parent nests inside the parent's interval."""
    sim = Simulator(seed=1)
    tracer = Tracer(sim)
    outer = tracer.begin("tenure", "leader", pid=0)
    sim.call_later(1.0, lambda: None)
    sim.run()
    inner = tracer.begin("batch.commit", "batch", pid=0, j=1)
    sim.call_later(2.0, lambda: None)
    sim.run()
    tracer.close(inner, "committed")
    sim.call_later(3.0, lambda: None)
    sim.run()
    tracer.close(outer, "lost")
    assert outer.start <= inner.start
    assert inner.end <= outer.end
    # The buffer preserves begin order.
    assert tracer.spans == [outer, inner]


def test_double_close_is_an_error():
    tracer = Tracer(Simulator(seed=1))
    span = tracer.begin("read", "read", pid=2)
    tracer.close(span, "served")
    with pytest.raises(ValueError):
        tracer.close(span, "served")


def test_mark_records_phase_attributes():
    tracer = Tracer(Simulator(seed=1))
    span = tracer.begin("batch.commit", "batch", pid=0, j=3)
    span.mark("acked_at", 12.5)
    tracer.close(span, "committed", k="extra")
    assert span.attrs == {"j": 3, "acked_at": 12.5, "k": "extra"}


def test_open_spans_and_finished_filter_by_name():
    tracer = Tracer(Simulator(seed=1))
    a = tracer.begin("read", "read", pid=0)
    b = tracer.begin("tenure", "leader", pid=1)
    tracer.close(a, "served")
    assert tracer.open_spans() == [b]
    assert tracer.open_spans("read") == []
    assert tracer.finished("read") == [a]


def test_finalize_closes_every_open_span():
    sim = Simulator(seed=1)
    tracer = Tracer(sim)
    a = tracer.begin("read", "read", pid=0)
    b = tracer.begin("tenure", "leader", pid=1)
    tracer.close(a, "served")
    closed = tracer.finalize(status="truncated")
    assert closed == 1
    assert b.status == "truncated" and not b.open
    assert a.status == "served"  # untouched
    assert tracer.finalize() == 0  # idempotent


def test_instants_are_buffered_with_timestamps():
    sim = Simulator(seed=1)
    tracer = Tracer(sim)
    sim.call_later(4.0, lambda: tracer.instant("leader.ready", "leader", 2, t=9))
    sim.run()
    (inst,) = tracer.instants
    assert inst.ts == 4.0
    assert inst.attrs == {"t": 9}


def test_obs_context_attaches_once():
    sim = Simulator(seed=1)
    obs = ObsContext(sim)
    assert sim.obs is obs
    assert sim.attach_obs(obs) is obs  # re-attaching the same one is fine
    with pytest.raises(SimulationError):
        ObsContext(sim)  # a second context on the same sim is a bug


def test_snapshot_shape_without_network():
    sim = Simulator(seed=1)
    obs = ObsContext(sim)
    obs.registry.counter("x").inc()
    obs.tracer.begin("read", "read", pid=0)
    snap = obs.snapshot()
    assert snap["counters"] == {"x": 1.0}
    assert snap["sim"]["now"] == 0.0
    assert "messages" not in snap
    assert snap["trace"] == {"spans": 1, "open_spans": 1, "instants": 0}
