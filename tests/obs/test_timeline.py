"""End-to-end tests: a traced CHT run yields the derived timelines, and
the CLI renders/validates them."""

import pytest

from repro.obs.cli import main, run_demo
from repro.obs.export import load_jsonl
from repro.obs.timeline import (
    commit_breakdown,
    leader_dwell,
    messages_per_op,
    read_timeline,
    render_report,
)

from repro.core.client import ChtCluster
from repro.core.config import ChtConfig
from repro.objects.kvstore import KVStoreSpec, get, put


@pytest.fixture(scope="module")
def traced_cluster():
    """A 5-replica steady-write run with observability on."""
    cluster = ChtCluster(KVStoreSpec(), ChtConfig(n=5), seed=7, obs=True)
    cluster.start()
    cluster.run_until_leader()
    futures = []
    for i in range(12):
        futures.append(cluster.submit(0, put("hot", i)))
        for pid in range(1, 5):
            futures.append(cluster.submit(pid, get("hot")))
        cluster.run(10.0)
    assert cluster.run_until(lambda: all(f.done for f in futures))
    return cluster


def test_commit_breakdown_is_nonempty_and_consistent(traced_cluster):
    breakdown = commit_breakdown(traced_cluster.obs)
    assert breakdown["total"].count > 0
    assert breakdown["prepare"].count == breakdown["total"].count
    # Phase means must sum to (roughly) the total mean: the phases
    # partition the span.
    phase_sum = (
        breakdown["prepare"].mean
        + breakdown["lease_wait"].mean
        + breakdown["commit"].mean
    )
    assert phase_sum == pytest.approx(breakdown["total"].mean, rel=1e-6)
    # Prepare needs at least one network round trip.
    assert breakdown["prepare"].mean >= traced_cluster.config.delta


def test_read_timeline_counts_blocked_reads(traced_cluster):
    reads = read_timeline(traced_cluster.obs)
    assert reads["count"] == 12 * 4
    # Reads racing a same-key RMW must have blocked on the conflict.
    assert reads["blocked"] > 0
    assert 0.0 < reads["blocked_fraction"] <= 1.0
    # Every blocked read waited on the basis, on a conflict, or both.
    assert reads["conflict_wait"].count > 0
    assert (
        reads["conflict_wait"].count + reads["basis_wait"].count
        >= reads["blocked"]
    )
    assert reads["latency"].count == reads["count"]


def test_messages_per_op_uses_network_counters(traced_cluster):
    ratios = messages_per_op(traced_cluster.obs)
    assert ratios is not None
    assert ratios["messages_total"] > 0
    assert ratios["committed_batches"] > 0
    assert ratios["per_batch"] > 0


def test_leader_dwell_reflects_the_stable_leader(traced_cluster):
    dwell = leader_dwell(traced_cluster.obs)
    # The steady run has one uninterrupted tenure — still open, so the
    # dwell table only counts *finished* tenures (possibly zero).
    assert dwell["count"] == len(
        [s for s in traced_cluster.obs.tracer.spans
         if s.name == "tenure" and not s.open]
    )


def test_render_report_contains_every_section(traced_cluster):
    text = render_report(traced_cluster.obs)
    for section in (
        "commit latency by phase",
        "read lifecycle",
        "messages per committed operation",
        "leader dwell times",
    ):
        assert section in text


def test_demo_and_report_cli_round_trip(tmp_path, capsys):
    out = str(tmp_path / "trace.jsonl")
    perfetto = str(tmp_path / "trace.perfetto.json")
    result = run_demo(seed=1, n=3, rounds=8, out=out, perfetto=perfetto)
    assert result["committed_batches"] > 0
    assert result["records"] > 0
    assert result["perfetto_events"] > 0

    trace = load_jsonl(out)
    assert commit_breakdown(trace)["total"].count > 0
    # No span may be left open in an exported trace: the demo finalizes.
    assert all(not s.open for s in trace.spans)

    assert main(["report", out]) == 0
    captured = capsys.readouterr()
    assert "commit latency by phase" in captured.out


def test_report_cli_fails_on_empty_trace(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main(["report", str(empty)]) == 1
    assert "no committed batches" in capsys.readouterr().err
