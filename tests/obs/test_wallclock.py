"""Obs wall-clock mode: real runs get honestly-labelled timelines."""

import json
import time

from repro.net.asyncio_rt import AsyncioRuntime
from repro.obs.clock import WallClock
from repro.obs.export import TraceData, load_jsonl
from repro.obs.spans import ObsContext
from repro.obs.timeline import render_report
from repro.sim.core import Simulator


def test_wallclock_source_timestamps_in_wall_ms():
    clock = WallClock()
    obs = ObsContext(clock)
    assert obs.time_unit == "wall-ms"
    assert clock.obs is obs  # attach_obs mirror of Simulator's
    span = obs.tracer.begin("op", "bench", pid=0)
    time.sleep(0.02)
    obs.tracer.close(span, "done")
    assert span.duration >= 15.0  # ms, not seconds or sim-units
    assert span.duration < 5_000.0


def test_sim_source_keeps_sim_unit():
    obs = ObsContext(Simulator(seed=1))
    assert obs.time_unit == "sim-ms"
    assert obs.snapshot()["time_unit"] == "sim-ms"


def test_asyncio_runtime_is_a_valid_clock_source():
    rt = AsyncioRuntime(0, peers={}, epoch=time.time() - 1.0)
    obs = ObsContext(rt)
    assert obs.time_unit == "wall-ms"
    assert rt.obs is obs
    # epoch was one second ago, so now reads ~1000 wall-ms.
    assert 900.0 < obs.now < 10_000.0
    snap = obs.snapshot()
    assert snap["time_unit"] == "wall-ms"
    assert snap["sim"]["events_processed"] == 0


def test_time_unit_round_trips_through_jsonl(tmp_path):
    clock = WallClock()
    obs = ObsContext(clock)
    span = obs.tracer.begin("batch.commit", "batch", pid=0)
    obs.tracer.close(span, "committed")
    path = tmp_path / "trace.jsonl"
    obs.export_jsonl(str(path))
    trace = load_jsonl(str(path))
    assert trace.time_unit == "wall-ms"
    assert trace.unit_label == "wall ms"
    report = render_report(trace)
    assert "commit latency by phase (wall ms)" in report
    assert "leader dwell times (wall ms)" in report
    assert "(sim ms)" not in report


def test_sim_traces_render_with_sim_labels():
    report = render_report(TraceData())
    assert "commit latency by phase (sim ms)" in report


def test_perfetto_export_labels_the_unit(tmp_path):
    obs = ObsContext(WallClock())
    span = obs.tracer.begin("op", "bench", pid=3)
    obs.tracer.close(span, "done")
    path = tmp_path / "trace.perfetto.json"
    obs.export_perfetto(str(path))
    doc = json.loads(path.read_text())
    assert doc["otherData"]["time_unit"] == "wall-ms"
