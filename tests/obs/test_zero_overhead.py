"""The zero-overhead-when-disabled contract, pinned by call-count probes.

An unobserved run (no ObsContext attached) must never reach any obs
code: every instrumentation site is guarded by ``if obs is not None``.
The probe monkeypatches call counters onto the Tracer and metric entry
points and then drives a full workload — leader election, conflicting
reads and writes, a crash/recovery — through an *unobserved* cluster.
Any counted call is a guard someone forgot.
"""

import gc

import pytest

import repro.obs.metrics as metrics_mod
import repro.obs.spans as spans_mod
from repro.core.client import ChtCluster
from repro.core.config import ChtConfig
from repro.objects.kvstore import KVStoreSpec, get, put


@pytest.fixture
def probe(monkeypatch):
    """Count every call into the obs layer's hot entry points."""
    # Finalize any *observed* clusters leaked by earlier tests first:
    # their generators run span-closing ``finally`` blocks when the
    # cyclic GC collects them, which would trip the probe spuriously.
    gc.collect()
    calls = {"tracer": 0, "metrics": 0}

    def counted(target):
        def wrapper(*args, **kwargs):
            calls[target] += 1
            raise AssertionError(
                "obs code reached in an unobserved run (missing guard)"
            )

        return wrapper

    monkeypatch.setattr(spans_mod.Tracer, "begin", counted("tracer"))
    monkeypatch.setattr(spans_mod.Tracer, "instant", counted("tracer"))
    monkeypatch.setattr(spans_mod.Tracer, "close", counted("tracer"))
    monkeypatch.setattr(metrics_mod.Counter, "inc", counted("metrics"))
    monkeypatch.setattr(metrics_mod.Gauge, "set", counted("metrics"))
    monkeypatch.setattr(metrics_mod.Histogram, "observe", counted("metrics"))
    return calls


def test_unobserved_run_never_enters_obs_code(probe):
    cluster = ChtCluster(KVStoreSpec(), ChtConfig(n=5), seed=11)
    cluster.start()
    leader = cluster.run_until_leader()
    assert cluster.obs is None
    assert all(r.obs is None for r in cluster.replicas)

    futures = []
    for i in range(6):
        futures.append(cluster.submit(0, put("k", i)))
        futures.append(cluster.submit(2, get("k")))
        cluster.run(10.0)
    # Exercise the crash/finally paths too — they also carry guards.
    victim = (leader.pid + 1) % 5
    cluster.crash(victim)
    cluster.run(200.0)
    cluster.recover(victim)
    assert cluster.run_until(lambda: all(f.done for f in futures))

    assert probe == {"tracer": 0, "metrics": 0}


def test_observed_run_has_identical_event_trace():
    """Attaching obs never schedules events nor consumes randomness: the
    observed run is bit-identical to the unobserved one."""

    def drive(obs):
        cluster = ChtCluster(
            KVStoreSpec(), ChtConfig(n=5), seed=13, obs=obs
        )
        cluster.start()
        cluster.run_until_leader()
        futures = [cluster.submit(0, put("k", i)) for i in range(4)]
        futures += [cluster.submit(1, get("k")) for _ in range(4)]
        assert cluster.run_until(lambda: all(f.done for f in futures))
        history = [
            (r.op_id, r.kind, r.invoked_at, r.responded_at, repr(r.response))
            for r in cluster.stats.records
        ]
        return cluster.sim.now, cluster.sim.events_processed, history

    assert drive(obs=False) == drive(obs=True)
