"""Property-based tests: the linearizability checker against an oracle.

The oracle enumerates every permutation of the (complete) history and
every subset of pending operations — exponential but exact for the tiny
histories hypothesis generates.
"""

from itertools import chain, combinations, permutations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.objects.register import RegisterSpec, read, write
from repro.verify.history import History, HistoryEntry
from repro.verify.linearizability import check_linearizable

SPEC = RegisterSpec(initial=0)


def oracle(entries):
    """Exact linearizability decision by brute force."""
    completed = [e for e in entries if not e.pending]
    pendings = [e for e in entries if e.pending]
    for included in chain.from_iterable(
        combinations(pendings, k) for k in range(len(pendings) + 1)
    ):
        candidate = completed + list(included)
        for order in permutations(candidate):
            if _order_ok(order):
                return True
    return False


def _order_ok(order):
    # Real-time precedence respected?
    for i, early in enumerate(order):
        for late in order[i + 1:]:
            if late.responded_at is not None and (
                late.responded_at < early.invoked_at
            ):
                return False
    # Responses consistent with sequential execution?
    state = SPEC.initial_state()
    for entry in order:
        state, response = SPEC.apply(state, entry.op)
        if not entry.pending and response != entry.response:
            return False
    return True


@st.composite
def histories(draw):
    """Small random register histories (some valid, some not)."""
    n_ops = draw(st.integers(min_value=1, max_value=5))
    entries = []
    for i in range(n_ops):
        start = draw(st.floats(min_value=0, max_value=20))
        duration = draw(st.floats(min_value=0.1, max_value=10))
        is_pending = draw(st.booleans()) and draw(st.booleans())
        if draw(st.booleans()):
            op = write(draw(st.integers(min_value=0, max_value=2)))
            response = None
        else:
            op = read()
            response = draw(st.integers(min_value=0, max_value=2))
        entries.append(
            HistoryEntry(
                op=op,
                response=None if is_pending else response,
                invoked_at=start,
                responded_at=None if is_pending else start + duration,
                pid=i,
            )
        )
    return entries


@given(histories())
@settings(max_examples=300, deadline=None, derandomize=True)
def test_checker_matches_bruteforce_oracle(entries):
    expected = oracle(entries)
    actual = bool(check_linearizable(SPEC, History(entries)))
    assert actual == expected


@st.composite
def sequential_runs(draw):
    """Histories produced by actually running ops one at a time: these are
    linearizable by construction."""
    n_ops = draw(st.integers(min_value=1, max_value=8))
    state = SPEC.initial_state()
    entries = []
    time = 0.0
    for _ in range(n_ops):
        if draw(st.booleans()):
            op = write(draw(st.integers(min_value=0, max_value=3)))
        else:
            op = read()
        state, response = SPEC.apply(state, op)
        entries.append(
            HistoryEntry(op=op, response=response, invoked_at=time,
                         responded_at=time + 1.0)
        )
        time += 2.0
    return entries


@given(sequential_runs())
@settings(max_examples=200, deadline=None, derandomize=True)
def test_sequential_executions_always_linearizable(entries):
    assert check_linearizable(SPEC, History(entries))


@given(sequential_runs(), st.data())
@settings(max_examples=200, deadline=None, derandomize=True)
def test_corrupting_a_read_response_matches_oracle(entries, data):
    reads = [i for i, e in enumerate(entries) if e.op.name == "read"]
    if not reads:
        return
    index = data.draw(st.sampled_from(reads))
    target = entries[index]
    corrupted = HistoryEntry(
        op=target.op,
        response=(target.response or 0) + 100,  # value never written
        invoked_at=target.invoked_at,
        responded_at=target.responded_at,
        pid=target.pid,
    )
    mutated = entries[:index] + [corrupted] + entries[index + 1:]
    assert not check_linearizable(SPEC, History(mutated))
