"""Property-based end-to-end tests of the CHT algorithm.

Each example builds a small cluster with a random seed, drives a random
mix of reads and writes (optionally with a random crash or partition),
and asserts the global safety properties: every surviving operation
completes, the history is linearizable, and reads never block longer than
3*delta after stabilization.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.client import ChtCluster
from repro.core.config import ChtConfig
from repro.objects.kvstore import KVStoreSpec, get, put
from repro.verify import check_linearizable


@st.composite
def scenarios(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.sampled_from([3, 5]))
    n_ops = draw(st.integers(min_value=4, max_value=14))
    ops = []
    for i in range(n_ops):
        pid = draw(st.integers(min_value=0, max_value=n - 1))
        key = draw(st.sampled_from(["a", "b"]))
        if draw(st.booleans()):
            ops.append((pid, get(key)))
        else:
            ops.append((pid, put(key, i)))
    fault = draw(st.sampled_from(["none", "crash_follower", "partition"]))
    return seed, n, ops, fault


@given(scenarios())
@settings(max_examples=25, deadline=None, derandomize=True)
def test_random_workloads_stay_linearizable(scenario):
    seed, n, ops, fault = scenario
    cluster = ChtCluster(KVStoreSpec(), ChtConfig(n=n), seed=seed)
    cluster.start()
    leader = cluster.run_until_leader()

    crashed = set()
    if fault == "crash_follower":
        victim = (leader.pid + 1) % n
        cluster.crash(victim)
        crashed.add(victim)
    elif fault == "partition":
        victim = (leader.pid + 1) % n
        cluster.net.isolate(victim, start=cluster.sim.now,
                            end=cluster.sim.now + 300.0)

    futures = [
        cluster.submit(pid, op) for pid, op in ops if pid not in crashed
    ]
    cluster.run(8000.0)

    assert all(f.done for f in futures), "surviving ops must complete"
    result = check_linearizable(
        cluster.spec, cluster.history(), partition_by_key=True
    )
    assert result, result.reason


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None, derandomize=True)
def test_blocking_bound_holds_across_seeds(seed):
    cluster = ChtCluster(KVStoreSpec(), ChtConfig(n=5), seed=seed)
    cluster.start()
    cluster.run_until_leader()
    cluster.execute(0, put("hot", 0))
    cluster.run(200.0)
    futures = []
    for i in range(5):
        futures.append(cluster.submit(i % 5, put("hot", i)))
        futures.append(cluster.submit((i + 1) % 5, get("hot")))
        cluster.run(20.0)
    cluster.run_until(lambda: all(f.done for f in futures), timeout=5000.0)
    assert all(f.done for f in futures)
    assert cluster.stats.max_blocking("read") <= 3 * cluster.config.delta
