"""Property-based tests for log compaction.

Random compaction parameters, workloads, and partition windows must never
affect safety: all surviving operations complete, the history stays
linearizable, and every replica converges to the same state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.client import ChtCluster
from repro.core.config import ChtConfig
from repro.objects.kvstore import KVStoreSpec, get, put
from repro.verify import check_linearizable


@st.composite
def compaction_scenarios(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    interval = draw(st.integers(min_value=1, max_value=8))
    retain = draw(st.integers(min_value=1, max_value=4))
    n_ops = draw(st.integers(min_value=8, max_value=16))
    partition_victim = draw(st.booleans())
    return seed, interval, retain, n_ops, partition_victim


@given(compaction_scenarios())
@settings(max_examples=15, deadline=None, derandomize=True)
def test_compaction_never_affects_safety(scenario):
    seed, interval, retain, n_ops, partition_victim = scenario
    config = ChtConfig(n=5, compaction_interval=interval,
                       compaction_retain=retain)
    cluster = ChtCluster(KVStoreSpec(), config, seed=seed)
    cluster.start()
    leader = cluster.run_until_leader()

    victim = None
    if partition_victim:
        victim = (leader.pid + 1) % 5
        cluster.net.isolate(victim, start=cluster.sim.now,
                            end=cluster.sim.now + 400.0)

    futures = []
    for i in range(n_ops):
        pid = i % 5
        if pid == victim:
            continue
        if i % 3 == 0:
            futures.append(cluster.submit(pid, get("k")))
        else:
            futures.append(cluster.submit(pid, put("k", i)))
    cluster.run(10_000.0)

    assert all(f.done for f in futures)
    result = check_linearizable(
        cluster.spec, cluster.history(), partition_by_key=True
    )
    assert result, result.reason
    # Convergence: after quiescence every live replica agrees.
    cluster.run(2000.0)
    states = {repr(r.state) for r in cluster.alive()
              if r.applied_upto == leader.applied_upto}
    assert len(states) == 1
