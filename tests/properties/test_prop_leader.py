"""Property-based tests for the enhanced leader service's support store."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.leader.enhanced import LeaderLease, _SupportStore


@st.composite
def leases(draw):
    counter = draw(st.integers(min_value=0, max_value=3))
    start = draw(st.floats(min_value=0, max_value=100))
    length = draw(st.floats(min_value=0, max_value=50))
    return LeaderLease(counter, start, start + length)


def brute_covers_both(lease_list, t1, t2):
    """Reference semantics: some counter has a message covering t1 and a
    message covering t2 (the paper's rule, directly)."""
    by_counter = {}
    for lease in lease_list:
        by_counter.setdefault(lease.counter, []).append(lease)
    for group in by_counter.values():
        covers_t1 = any(m.start <= t1 <= m.end for m in group)
        covers_t2 = any(m.start <= t2 <= m.end for m in group)
        if covers_t1 and covers_t2:
            return True
    return False


@given(st.lists(leases(), min_size=0, max_size=10),
       st.floats(min_value=0, max_value=160),
       st.floats(min_value=0, max_value=160))
@settings(max_examples=500, deadline=None, derandomize=True)
def test_store_matches_reference_semantics(lease_list, t1, t2):
    store = _SupportStore()
    for lease in lease_list:
        store.add(lease)
    assert store.covers_both(t1, t2) == brute_covers_both(lease_list, t1, t2)


@given(st.lists(leases(), min_size=0, max_size=12))
@settings(max_examples=300, deadline=None, derandomize=True)
def test_merged_intervals_are_disjoint_and_sorted_content(lease_list):
    store = _SupportStore()
    for lease in lease_list:
        store.add(lease)
    for counter, spans in store.by_counter.items():
        ordered = sorted(spans)
        for (s1, e1), (s2, e2) in zip(ordered, ordered[1:]):
            assert e1 < s2, "merged intervals must be disjoint"
