"""Property-based tests on object specifications.

Invariants checked for every object type:

* ``apply`` is pure: re-applying to the same state gives the same result,
  and old states are never mutated.
* ``is_read`` is sound: an operation classified as a read never changes
  any reachable state.
* ``conflicts`` soundly over-approximates the paper's definition: if the
  definition says two operations conflict (over sampled reachable
  states), the fast predicate must agree.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.objects.bank import BankSpec, balance, deposit, total, transfer, withdraw
from repro.objects.counter import CounterSpec, add, value
from repro.objects.kvstore import KVStoreSpec, delete, get, increment, put, scan
from repro.objects.lock import LockSpec, acquire, owner, release
from repro.objects.queue import QueueSpec, dequeue, enqueue, peek, size
from repro.objects.register import RegisterSpec, cas, read, write

KEYS = ["a", "b"]
VALUES = [0, 1]
WHO = ["p", "q"]


def kv_ops():
    return st.one_of(
        st.sampled_from(KEYS).map(get),
        st.just(scan()),
        st.tuples(st.sampled_from(KEYS), st.sampled_from(VALUES)).map(
            lambda kv: put(*kv)),
        st.sampled_from(KEYS).map(delete),
        st.tuples(st.sampled_from(KEYS), st.integers(-2, 2)).map(
            lambda kv: increment(*kv)),
    )


def register_ops():
    return st.one_of(
        st.just(read()),
        st.sampled_from(VALUES).map(write),
        st.tuples(st.sampled_from(VALUES), st.sampled_from(VALUES)).map(
            lambda ab: cas(*ab)),
    )


def counter_ops():
    return st.one_of(st.just(value()), st.integers(-3, 3).map(add))


def lock_ops():
    return st.one_of(
        st.just(owner()),
        st.sampled_from(WHO).map(acquire),
        st.sampled_from(WHO).map(release),
    )


def queue_ops():
    return st.one_of(
        st.just(peek()), st.just(size()),
        st.sampled_from(VALUES).map(enqueue), st.just(dequeue()),
    )


def bank_ops():
    return st.one_of(
        st.sampled_from(KEYS).map(balance),
        st.just(total()),
        st.tuples(st.sampled_from(KEYS), st.integers(0, 5)).map(
            lambda kv: deposit(*kv)),
        st.tuples(st.sampled_from(KEYS), st.integers(0, 5)).map(
            lambda kv: withdraw(*kv)),
        st.tuples(st.sampled_from(KEYS), st.sampled_from(KEYS),
                  st.integers(0, 5)).map(lambda abx: transfer(*abx)),
    )


SPECS = [
    (KVStoreSpec(), kv_ops()),
    (RegisterSpec(initial=0), register_ops()),
    (CounterSpec(), counter_ops()),
    (LockSpec(), lock_ops()),
    (QueueSpec(), queue_ops()),
    (BankSpec({"a": 3}), bank_ops()),
]

spec_and_ops = st.sampled_from(SPECS)


@given(spec_and_ops, st.data())
@settings(max_examples=300, deadline=None, derandomize=True)
def test_apply_is_deterministic_and_pure(pair, data):
    spec, ops = pair
    sequence = data.draw(st.lists(ops, min_size=0, max_size=6))
    op = data.draw(ops)
    state = spec.initial_state()
    for step in sequence:
        state, _ = spec.apply(state, step)
    first = spec.apply(state, op)
    second = spec.apply(state, op)
    assert first == second


@given(spec_and_ops, st.data())
@settings(max_examples=300, deadline=None, derandomize=True)
def test_is_read_ops_never_change_state(pair, data):
    spec, ops = pair
    sequence = data.draw(st.lists(ops, min_size=0, max_size=6))
    op = data.draw(ops)
    state = spec.initial_state()
    for step in sequence:
        state, _ = spec.apply(state, step)
    new_state, _ = spec.apply(state, op)
    if spec.is_read(op):
        assert new_state == state


@given(spec_and_ops, st.data())
@settings(max_examples=300, deadline=None, derandomize=True)
def test_conflicts_over_approximates_definition(pair, data):
    spec, ops = pair
    # Sample reachable states.
    states = [spec.initial_state()]
    for step in data.draw(st.lists(ops, min_size=0, max_size=6)):
        states.append(spec.apply(states[-1], step)[0])
    read_op = data.draw(ops.filter(spec.is_read))
    rmw_op = data.draw(ops.filter(lambda o: not spec.is_read(o)))
    for state in states:
        after_w, _ = spec.apply(state, rmw_op)
        _, before = spec.apply(state, read_op)
        _, after = spec.apply(after_w, read_op)
        if before != after:
            assert spec.conflicts(read_op, rmw_op), (
                f"{spec.name}: definition says {read_op} conflicts with "
                f"{rmw_op} from state {state!r} but fast predicate says no"
            )
            return
