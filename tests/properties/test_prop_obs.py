"""Property: batch spans always terminate, under any healing fault schedule.

Every ``batch.commit`` span the leader opens in DoOps must eventually be
closed with ``committed`` or ``superseded`` — through crashes mid-batch
(task cancellation unwinds the generator's ``finally``), leader changes,
partitions, and clock desyncs.  A span left open or closed with any
other status means an instrumentation path leaked, which would poison
every derived timeline.

The schedules come from the chaos generator, which produces healing
schedules by construction, so the runs are also expected to pass the
nemesis verdict — making this a combined chaos + observability pin.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.generator import ScheduleGenerator
from repro.chaos.nemesis import NemesisRunner


@given(
    seed=st.integers(min_value=0, max_value=5_000),
    index=st.integers(min_value=0, max_value=7),
)
@settings(max_examples=15, deadline=None, derandomize=True)
def test_every_batch_span_terminates(seed, index):
    generator = ScheduleGenerator(
        n=5, num_clients=2, horizon=1500.0, seed=seed
    )
    schedule = generator.generate(index)
    runner = NemesisRunner(
        system="cht", n=5, num_clients=2, seed=seed,
        horizon=1500.0, ops_per_client=3,
    )
    result = runner.run(schedule)
    assert result.ok, f"{result.kind}: {result.detail}"

    obs = runner.last_obs
    assert obs is not None
    # The run stops the instant the last op resolves; let genuinely
    # in-flight batches (a concurrent recovery's NoOps, a final lease
    # wait) play out before judging them leaked.
    obs.sim.run_for(5_000.0)

    batches = [s for s in obs.tracer.spans if s.name == "batch.commit"]
    assert batches, "the workload committed nothing"
    leaked = [s for s in batches if s.open]
    assert not leaked, f"open batch spans leaked: {leaked}"
    bad = [s for s in batches if s.status not in ("committed", "superseded")]
    assert not bad, f"batch spans with unexpected status: {bad}"

    # The verdict carried a coherent metrics snapshot of the same run.
    assert result.metrics is not None
    committed = sum(
        v for name, v in result.metrics["counters"].items()
        if name.startswith("commits_total")
    )
    assert committed > 0
