"""Property-based tests of the leaseholder read tier.

The headline property: under *any* healing chaos schedule, the merged
history of leaseholder-served local reads and replica-committed RMWs is
linearizable.  Schedules come from the chaos generator (crashes,
partitions — including the leaseholder-isolating partition that the
lease-expiry wait exists for), so every example is a miniature soak with
its verdict checked by the PR 4 linearizability checker.

A second property pins the read path itself across random interleavings
of direct leaseholder reads and conflicting writes: every read resolves,
blocks at most ``3 * delta``, and the merged history linearizes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.generator import ScheduleGenerator
from repro.chaos.nemesis import NemesisRunner
from repro.core.client import ChtCluster
from repro.core.config import ChtConfig
from repro.objects.kvstore import KVStoreSpec, get, put
from repro.verify import check_linearizable


@st.composite
def soak_cells(draw):
    seed = draw(st.integers(min_value=0, max_value=500))
    index = draw(st.integers(min_value=0, max_value=5))
    num_leaseholders = draw(st.sampled_from([1, 2, 3]))
    return seed, index, num_leaseholders


@given(soak_cells())
@settings(max_examples=12, deadline=None, derandomize=True)
def test_local_reads_stay_linearizable_under_healing_chaos(cell):
    seed, index, num_leaseholders = cell
    generator = ScheduleGenerator(
        n=3, num_clients=2, seed=seed,
        num_leaseholders=num_leaseholders,
    )
    runner = NemesisRunner(
        system="cht", n=3, num_clients=2, seed=seed, ops_per_client=4,
        num_leaseholders=num_leaseholders, obs=False,
    )
    result = runner.run(generator.generate(index))
    assert result.kind != "linearizability", result
    assert result.kind != "invariant", result
    assert result.ok or result.kind == "undecided", result


@st.composite
def read_write_scripts(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    num_leaseholders = draw(st.sampled_from([1, 2]))
    n_steps = draw(st.integers(min_value=4, max_value=12))
    steps = []
    for i in range(n_steps):
        key = draw(st.sampled_from(["a", "b"]))
        if draw(st.booleans()):
            holder = draw(st.integers(min_value=0,
                                      max_value=num_leaseholders - 1))
            steps.append(("read", holder, key))
        else:
            steps.append(("write", i, key))
        steps.append(("run", draw(st.sampled_from([0.0, 5.0, 25.0])), None))
    return seed, num_leaseholders, steps


@given(read_write_scripts())
@settings(max_examples=20, deadline=None, derandomize=True)
def test_interleaved_tier_reads_and_writes_linearize(script):
    seed, num_leaseholders, steps = script
    cluster = ChtCluster(KVStoreSpec(), ChtConfig(n=3), seed=seed,
                         num_leaseholders=num_leaseholders)
    cluster.start()
    leader = cluster.run_until_leader()
    cluster.execute(leader.pid, put("a", -1))
    cluster.run(3 * cluster.config.lease_period)

    futures = []
    for kind, arg, key in steps:
        if kind == "read":
            futures.append(
                cluster.leaseholders[arg].submit_read(get(key))
            )
        elif kind == "write":
            futures.append(cluster.submit(leader.pid, put(key, arg)))
        else:
            cluster.run(arg)
    cluster.run(8_000.0)

    assert all(f.done for f in futures), "every op must complete"
    assert cluster.stats.max_blocking("read") <= 3 * cluster.config.delta
    result = check_linearizable(
        cluster.spec, cluster.history(), partition_by_key=True
    )
    assert result, result.reason
