"""Property-based tests on the simulation substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.clocks import Clock
from repro.sim.core import Simulator
from repro.sim.trace import percentile


@st.composite
def clock_specs(draw):
    """Random piecewise clocks: positive rates, forward jumps."""
    offset = draw(st.floats(min_value=-5, max_value=5))
    segments = draw(
        st.lists(
            st.tuples(
                st.floats(min_value=0.5, max_value=20),   # gap to next start
                st.floats(min_value=0.1, max_value=3),    # rate
                st.floats(min_value=0, max_value=5),      # jump
            ),
            min_size=0,
            max_size=4,
        )
    )
    return offset, segments


@given(clock_specs(), st.lists(st.floats(min_value=0, max_value=200),
                               min_size=2, max_size=20))
@settings(max_examples=300, deadline=None, derandomize=True)
def test_clock_is_monotone(spec, times):
    offset, segments = spec
    clock = Clock(offset=offset)
    start = 0.0
    for gap, rate, jump in segments:
        start += gap
        clock.add_segment(start, rate=rate, jump=jump)
    ordered = sorted(times)
    readings = [clock.local(t) for t in ordered]
    assert all(a <= b + 1e-9 for a, b in zip(readings, readings[1:]))


@given(clock_specs(), st.floats(min_value=0, max_value=200))
@settings(max_examples=300, deadline=None, derandomize=True)
def test_clock_inverse_roundtrip(spec, real):
    offset, segments = spec
    clock = Clock(offset=offset)
    start = 0.0
    for gap, rate, jump in segments:
        start += gap
        clock.add_segment(start, rate=rate, jump=jump)
    local = clock.local(real)
    recovered = clock.real(local)
    # real(local(t)) returns the earliest real time with that reading; it
    # can precede t only at a jump instant, never exceed it.
    assert recovered <= real + 1e-6
    assert clock.local(recovered) <= local + 1e-6


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=50),
       st.floats(min_value=0, max_value=100))
@settings(max_examples=300, deadline=None, derandomize=True)
def test_percentile_within_bounds(values, q):
    p = percentile(values, q)
    assert min(values) - 1e-9 <= p <= max(values) + 1e-9


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                max_size=30),
       st.floats(min_value=0, max_value=100),
       st.floats(min_value=0, max_value=100))
@settings(max_examples=200, deadline=None, derandomize=True)
def test_percentile_monotone_in_q(values, q1, q2):
    low, high = sorted([q1, q2])
    assert percentile(values, low) <= percentile(values, high) + 1e-9


@given(st.integers(min_value=0, max_value=2 ** 31),
       st.integers(min_value=1, max_value=30))
@settings(max_examples=50, deadline=None, derandomize=True)
def test_simulator_deterministic_under_random_schedules(seed, n_events):
    def run():
        sim = Simulator(seed=seed)
        log = []
        for i in range(n_events):
            delay = sim.rng.uniform(0, 100)
            sim.schedule(delay, lambda i=i: log.append((i, sim.now)))
        sim.run()
        return log

    assert run() == run()
