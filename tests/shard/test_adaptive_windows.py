"""Window-count regressions for the adaptive sync engine on a real cluster.

The fixed-lookahead engine paid ``horizon / lookahead`` command windows
no matter what the workload did; the adaptive engine's earliest-output-
time promises must collapse quiet stretches to a near-constant window
count and keep busy stretches well under the fixed-lookahead ceiling.
These pins are what keeps ``BENCH_parallel.json``'s quiet-workload row
honest: they fail locally long before a CI bench run would.

In-process parallel mode throughout — same window accounting as forked
workers, minus the process plumbing, and deterministic to boot.
"""

from repro.core.config import ChtConfig
from repro.objects.kvstore import KVStoreSpec, put
from repro.shard import ParallelShardedCluster

SEED = 7
GROUPS = 4
LOOKAHEAD = 10.0  # transport delay minimum, the engine's lookahead


def _cluster():
    return ParallelShardedCluster(
        KVStoreSpec(),
        ChtConfig(n=3),
        num_groups=GROUPS,
        num_slots=8,
        seed=SEED,
        num_clients=1,
        use_processes=False,
    ).start()


def test_quiet_cluster_needs_near_constant_windows():
    cluster = _cluster()
    try:
        cluster.run_until_leaders()
        settled = cluster.windows
        horizon = cluster.engine.now + 4000.0
        cluster.run_to(horizon)
        quiet = cluster.windows - settled
        # Fixed lookahead would have paid horizon/lookahead = 400 windows
        # for this stretch; the quiescence promise collapses it to the
        # handful the run_to boundary itself costs.
        assert quiet <= 8, (
            f"quiet stretch took {quiet} windows "
            f"(fixed-lookahead baseline: {int(4000.0 / LOOKAHEAD)})"
        )
    finally:
        cluster.close()


def test_steady_writes_stay_under_the_fixed_lookahead_ceiling():
    cluster = _cluster()
    try:
        cluster.run_until_leaders()
        start_now = cluster.engine.now
        start_windows = cluster.windows
        router = cluster.router(0)
        futures = []
        for i in range(20):
            futures.append(router.submit(put(f"k{i}", f"v{i}")))
            cluster.run(100.0)
        assert all(f.done for f in futures)
        elapsed = cluster.engine.now - start_now
        busy = cluster.windows - start_windows
        ceiling = int(elapsed / LOOKAHEAD)
        # The causal chain cadence bounds the adaptive engine below the
        # one-window-per-lookahead ceiling even under steady traffic.
        assert busy < ceiling, (
            f"steady writes took {busy} windows; fixed-lookahead "
            f"ceiling over the same {elapsed:.0f}ms is {ceiling}"
        )
    finally:
        cluster.close()
