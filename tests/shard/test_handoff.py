"""Fenced handoff at the cluster level: data moves, crashes don't hurt.

Key facts (sha256-based, stable): with ``num_slots=4`` and two groups,
the uniform map gives group 0 slots {0, 2} and group 1 slots {1, 3};
``"k9"`` lives in slot 0, ``"k0"`` in slot 1, ``"k2"`` in slot 2,
``"k3"`` in slot 3.
"""

import pytest

from repro.core.config import ChtConfig
from repro.objects.kvstore import KVStoreSpec, get, put
from repro.shard import ShardedCluster, WrongShard

KEY_IN_SLOT = {0: "k9", 1: "k0", 2: "k2", 3: "k3"}


def make_cluster(seed=0, num_groups=2, obs=False, num_clients=1):
    cluster = ShardedCluster(
        KVStoreSpec(),
        ChtConfig(n=3),
        num_groups=num_groups,
        num_slots=4,
        seed=seed,
        num_clients=num_clients,
        obs=obs,
    ).start()
    cluster.run_until_leaders()
    return cluster


def await_op(cluster, future, timeout=30_000.0):
    assert cluster.run_until(lambda: future.done, timeout), "op stuck"
    return future.value


def test_handoff_moves_data_and_ownership():
    cluster = make_cluster()
    router = cluster.router(0)
    await_op(cluster, router.submit(put(KEY_IN_SLOT[0], "zero")))
    await_op(cluster, router.submit(put(KEY_IN_SLOT[2], "two")))

    record = await_op(cluster, cluster.spawn_handoff(0, 1, slots={2}))
    assert record["src"] == 0 and record["dst"] == 1
    assert record["slots"] == (2,)
    assert record["items"] == 1
    assert record["version"] == 2
    assert cluster.map.group_for(KEY_IN_SLOT[2]) == 1

    # The moved key reads through the router from its new home; the
    # kept key still reads from group 0.
    assert await_op(cluster, router.submit(get(KEY_IN_SLOT[2]))) == "two"
    assert await_op(cluster, router.submit(get(KEY_IN_SLOT[0]))) == "zero"

    # Committed ownership converged to the published map.
    cluster.run(500.0)
    assert cluster.owned_slots(0) == frozenset({0})
    assert cluster.owned_slots(1) == frozenset({1, 2, 3})


def test_source_answers_wrong_shard_after_freeze():
    cluster = make_cluster()
    session0 = cluster.groups[0].clients[0]
    await_op(cluster, cluster.spawn_handoff(0, 1, slots={2}))
    response = await_op(cluster, session0.submit(get(KEY_IN_SLOT[2])))
    assert isinstance(response, WrongShard)
    assert response.version == 2


def test_handoff_survives_source_leader_crash():
    cluster = make_cluster(seed=4)
    router = cluster.router(0)
    await_op(cluster, router.submit(put(KEY_IN_SLOT[0], 1)))

    victim = cluster.groups[0].leader()
    handoff = cluster.spawn_handoff(0, 1, slots=cluster.map.slots_of(0))
    cluster.run(5.0)  # freeze in flight when the leader dies
    victim.crash()
    record = await_op(cluster, handoff, timeout=60_000.0)
    assert record["items"] == 1
    victim.recover()

    assert await_op(cluster, router.submit(get(KEY_IN_SLOT[0]))) == 1
    cluster.run(1_000.0)
    assert cluster.owned_slots(0) == frozenset()
    assert cluster.owned_slots(1) == frozenset({0, 1, 2, 3})


def test_chained_handoffs_serialize_and_never_double_own():
    # Spawn both before running: the second must wait for the first and
    # resolve its slot set against the map the first one published.
    cluster = make_cluster(num_groups=3)
    first = cluster.spawn_handoff(0, 1, slots=cluster.map.slots_of(0))
    second = cluster.spawn_handoff(1, 2, slots={0, 1})
    await_op(cluster, first, timeout=60_000.0)
    await_op(cluster, second, timeout=60_000.0)
    cluster.run(1_000.0)
    sets = [cluster.owned_slots(g) for g in range(3)]
    assert sum(len(s) for s in sets) == 4
    assert frozenset().union(*sets) == frozenset(range(4))
    # Slot 0 travelled 0 -> 1 -> 2; slot 1 started at group 1 and moved.
    assert 0 in sets[2] and 1 in sets[2]


def test_handoff_of_already_moved_slots_is_a_noop():
    cluster = make_cluster()
    await_op(cluster, cluster.spawn_handoff(0, 1, slots={0, 2}))
    version = cluster.map.version
    record = await_op(cluster, cluster.spawn_handoff(0, 1, slots={0, 2}))
    assert record["slots"] == ()
    assert record["items"] == 0
    assert cluster.map.version == version  # nothing republished


def test_spawn_handoff_validation():
    cluster = make_cluster()
    with pytest.raises(ValueError, match="must differ"):
        cluster.spawn_handoff(0, 0)
    with pytest.raises(ValueError, match="unknown group"):
        cluster.spawn_handoff(0, 9)


def test_handoff_span_and_counter_recorded():
    cluster = make_cluster(obs=True)
    await_op(cluster, cluster.spawn_handoff(0, 1, slots={2}))
    spans = cluster.obs.tracer.finished("shard.handoff")
    assert len(spans) == 1
    span = spans[0]
    assert span.attrs["src"] == 0 and span.attrs["dst"] == 1
    assert span.attrs["site"] == "g0"
    assert span.attrs["version"] == 2
    assert "frozen_at" in span.attrs and span.attrs["items"] == 0
    assert span.duration > 0


def test_cluster_constructor_validation():
    with pytest.raises(ValueError, match="at least one group"):
        ShardedCluster(KVStoreSpec(), num_groups=0)
    with pytest.raises(ValueError, match="at least one client"):
        ShardedCluster(KVStoreSpec(), num_clients=0)


def test_groups_share_one_timeline_with_distinct_sites():
    cluster = make_cluster(obs=True)
    assert all(g.sim is cluster.sim for g in cluster.groups)
    assert all(g.obs is cluster.obs for g in cluster.groups)
    sites = {r._site_label.get("site") for g in cluster.groups
             for r in g.replicas}
    assert sites == {"g0", "g1"}
