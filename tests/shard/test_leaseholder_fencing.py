"""Leaseholder fencing across shard handoffs.

A group's leaseholders answer reads for whatever the group's applied
state owns.  Once a range is frozen out (``shard_freeze`` committed),
a holder must answer the moved range only with :class:`WrongShard` —
and crucially, a holder that was crashed while the handoff committed
must not come back, pick up a fresh lease, and serve the frozen range
from its stale pre-freeze state.  Two mechanisms pin that:

* every read conflicts with a pending freeze/install batch (the
  :class:`ShardedSpec` conflict relation), so reads block behind an
  in-flight handoff rather than slipping in front of it;
* a recovered holder's new lease carries the leader's commit frontier
  ``k``, and the read path linearizes at ``k_hat >= lease.k`` — the
  holder must catch up past the freeze before serving anything.

Key facts (sha256-based, stable): with ``num_slots=4`` and two groups,
group 0 owns slots {0, 2}; ``"k9"`` lives in slot 0, ``"k2"`` in slot 2.
"""

from repro.core.config import ChtConfig
from repro.objects.kvstore import KVStoreSpec, get, put
from repro.shard import ShardedCluster, WrongShard

KEY_KEPT = "k9"    # slot 0, stays with group 0
KEY_MOVED = "k2"   # slot 2, handed to group 1


def make_cluster(seed=0, num_leaseholders=2):
    cluster = ShardedCluster(
        KVStoreSpec(),
        ChtConfig(n=3),
        num_groups=2,
        num_slots=4,
        seed=seed,
        num_clients=1,
        num_leaseholders=num_leaseholders,
    ).start()
    cluster.run_until_leaders()
    return cluster


def settle(cluster):
    """Write both keys through the router and let every holder lease."""
    router = cluster.router(0)
    for key, value in ((KEY_KEPT, "kept"), (KEY_MOVED, "moved")):
        future = router.submit(put(key, value))
        assert cluster.run_until(lambda: future.done), "settle write stuck"
    cluster.run(3 * cluster.config.lease_period)
    for group in cluster.groups:
        assert all(lh._lease_valid() for lh in group.leaseholders)
    return router


def await_op(cluster, future, timeout=30_000.0):
    assert cluster.run_until(lambda: future.done, timeout), "op stuck"
    return future.value


def test_source_tier_answers_wrong_shard_after_freeze():
    cluster = make_cluster()
    settle(cluster)
    await_op(cluster, cluster.spawn_handoff(0, 1, slots={2}))
    cluster.run(500.0)
    lh = cluster.groups[0].leaseholders[0]
    assert isinstance(await_op(cluster, lh.submit_read(get(KEY_MOVED))),
                      WrongShard)
    # The kept range still serves locally.
    assert await_op(cluster, lh.submit_read(get(KEY_KEPT))) == "kept"


def test_destination_tier_serves_the_installed_range():
    cluster = make_cluster()
    settle(cluster)
    await_op(cluster, cluster.spawn_handoff(0, 1, slots={2}))
    cluster.run(500.0)
    lh = cluster.groups[1].leaseholders[0]
    assert await_op(cluster, lh.submit_read(get(KEY_MOVED))) == "moved"


def test_reads_block_behind_an_inflight_freeze():
    cluster = make_cluster(seed=2)
    settle(cluster)
    lh = cluster.groups[0].leaseholders[0]
    handoff = cluster.spawn_handoff(0, 1, slots={2})
    # Run until the freeze batch is pending (prepared, uncommitted) at
    # the holder; a read must not slip in front of it.
    assert cluster.run_until(
        lambda: any(j not in lh.batches for j in lh.pending_batches),
        timeout=5_000.0,
    ), "freeze never became pending at the holder"
    read = lh.submit_read(get(KEY_MOVED))
    assert not read.done, "read conflicting with a pending freeze must block"
    assert isinstance(await_op(cluster, read), WrongShard)
    await_op(cluster, handoff, timeout=60_000.0)


def test_recovered_holder_cannot_serve_the_frozen_range_stale():
    # The regression this file exists for: crash a holder before the
    # handoff, complete freeze+install while it is down, recover it.
    # Its fresh lease carries the post-freeze commit frontier, so its
    # first read of the moved range must catch up and answer WrongShard
    # — never the stale pre-freeze value.
    cluster = make_cluster(seed=3)
    settle(cluster)
    victim = cluster.groups[0].leaseholders[0]
    victim.crash()
    await_op(cluster, cluster.spawn_handoff(0, 1, slots={2}),
             timeout=60_000.0)
    cluster.run(500.0)
    victim.recover()
    assert cluster.run_until(
        lambda: victim._lease_valid(),
        timeout=10 * cluster.config.lease_period,
    ), "recovered holder never re-leased"
    value = await_op(cluster, victim.submit_read(get(KEY_MOVED)))
    assert isinstance(value, WrongShard), (
        f"stale lease served the frozen range: got {value!r}"
    )
    leader = cluster.groups[0].leader()
    assert victim.applied_upto >= leader.applied_upto - 1, (
        "holder served without catching up past the freeze"
    )


def test_holder_crash_mid_handoff_heals_and_fences():
    cluster = make_cluster(seed=5)
    settle(cluster)
    victim = cluster.groups[0].leaseholders[1]
    handoff = cluster.spawn_handoff(0, 1, slots={2})
    cluster.run(5.0)  # freeze in flight when the holder dies
    victim.crash()
    await_op(cluster, handoff, timeout=60_000.0)
    victim.recover()
    assert cluster.run_until(
        lambda: victim._lease_valid(),
        timeout=10 * cluster.config.lease_period,
    )
    assert isinstance(await_op(cluster, victim.submit_read(get(KEY_MOVED))),
                      WrongShard)
    assert await_op(cluster, victim.submit_read(get(KEY_KEPT))) == "kept"
