"""ShardMap: stable hashing, assignment algebra, move validation."""

import pytest

from repro.shard import ShardMap, slot_of


def test_slot_of_is_stable_across_interpreter_runs():
    # sha256 of repr(key): these placements are fixed forever, unlike
    # the PYTHONHASHSEED-randomized built-in hash.
    assert slot_of("k0", 16) == 13
    assert slot_of("alpha", 16) == 0
    assert slot_of(("t", 1), 8) == 5


def test_slot_of_stays_in_range():
    for i in range(200):
        assert 0 <= slot_of(f"key{i}", 7) < 7


def test_uniform_round_robin():
    shard_map = ShardMap.uniform(16, 4)
    assert shard_map.version == 1
    assert shard_map.num_slots == 16
    assert shard_map.assignment == tuple(s % 4 for s in range(16))
    assert shard_map.slots_of(2) == frozenset({2, 6, 10, 14})


def test_uniform_needs_a_slot_per_group():
    with pytest.raises(ValueError, match="at least one slot per group"):
        ShardMap.uniform(3, 4)


def test_slots_partition_disjoint_and_complete():
    shard_map = ShardMap.uniform(10, 3)
    sets = [shard_map.slots_of(g) for g in range(3)]
    assert sum(len(s) for s in sets) == 10
    assert frozenset().union(*sets) == frozenset(range(10))


def test_group_for_agrees_with_slot_of():
    shard_map = ShardMap.uniform(16, 4)
    for key in ("a", "b", ("tuple", 3), 42):
        assert shard_map.group_for(key) == \
            shard_map.assignment[slot_of(key, 16)]


def test_move_bumps_version_and_reassigns():
    v1 = ShardMap.uniform(8, 2)
    v2 = v1.move({0, 2}, 1)
    assert v2.version == 2
    assert v2.slots_of(1) == v1.slots_of(1) | {0, 2}
    assert v2.slots_of(0) == v1.slots_of(0) - {0, 2}
    # The original is untouched (maps are immutable values).
    assert v1.version == 1
    assert v1.group_of_slot(0) == 0


def test_move_validation():
    shard_map = ShardMap.uniform(8, 2)
    with pytest.raises(ValueError, match="at least one slot"):
        shard_map.move([], 1)
    with pytest.raises(ValueError, match="unknown slot"):
        shard_map.move({99}, 1)
    with pytest.raises(ValueError, match="unknown destination"):
        shard_map.move({0}, 5)


def test_constructor_rejects_bad_assignments():
    with pytest.raises(ValueError, match="at least one slot"):
        ShardMap(version=1, assignment=(), num_groups=1)
    with pytest.raises(ValueError, match="unknown group"):
        ShardMap(version=1, assignment=(0, 3), num_groups=2)
