"""The sharded nemesis: routed workloads under faults with mid-run handoffs."""

from repro.chaos.generator import ScheduleGenerator
from repro.chaos.nemesis import NemesisRunner
from repro.sim.failures import FaultSchedule, LeaderCrash


def make_runner(**kwargs):
    defaults = dict(
        system="sharded", n=3, num_clients=2, seed=0, ops_per_client=4,
        groups=2, handoffs=1,
    )
    defaults.update(kwargs)
    return NemesisRunner(**defaults)


def test_empty_schedule_sharded_run_is_clean():
    result = make_runner().run(FaultSchedule())
    assert result.ok, result
    assert result.ops_completed == 8


def test_sharded_runs_are_deterministic():
    schedule = ScheduleGenerator(n=3, num_clients=2, seed=3).generate(0)
    first = make_runner(seed=3).run(schedule)
    second = make_runner(seed=3).run(schedule)
    assert (first.ok, first.kind, first.ops_completed) == (
        second.ok, second.kind, second.ops_completed
    )


def test_mini_sharded_soak_with_handoffs():
    generator = ScheduleGenerator(n=3, num_clients=2, seed=1)
    runner = make_runner(seed=1, handoffs=2)
    for index in range(3):
        result = runner.run(generator.generate(index))
        assert result.ok, f"schedule {index}: {result}"


def test_leader_crash_racing_the_handoff_is_survived():
    # A leader-targeted crash timed right at the first handoff point
    # (horizon/2): freeze or install loses its leader mid-commit and
    # must come back through session retransmission.
    schedule = FaultSchedule(
        leader_crashes=[LeaderCrash(at=1250.0, downtime=200.0)]
    )
    result = make_runner().run(schedule)
    assert result.ok, result


def test_planted_reply_cache_bug_is_caught_in_sharded_mode():
    # skip_reply_cache lets a retransmitted RMW apply twice; with a
    # handoff racing retries, the sharded verdict pipeline must catch
    # it (as a linearizability/invariant/liveness failure, depending on
    # where the double application lands).
    # Generator seed picked so the catch lands early in the budget for
    # the current (site-namespaced) rng streams; re-scan seeds if the
    # sharded streams are ever re-baselined again.
    generator = ScheduleGenerator(n=3, num_clients=2, seed=13)
    runner = make_runner(bug="skip_reply_cache")
    caught = False
    for index in range(6):
        result = runner.run(generator.generate(index))
        if not result.ok and result.kind != "undecided":
            caught = True
            break
    assert caught, "planted reply-cache bug survived 6 sharded schedules"


def test_more_groups_than_slots_becomes_a_verdict_not_a_crash():
    # run() never raises; an impossible configuration surfaces as an
    # "exception" verdict carrying the ValueError.
    result = make_runner(groups=99).run(FaultSchedule())
    assert not result.ok
    assert result.kind == "exception"
    assert "slot per group" in result.detail
