"""The determinism oracle: serial and parallel traces are byte-identical.

Each scenario drives a :class:`ShardedCluster` (one shared simulator)
and a :class:`ParallelShardedCluster` (one simulator per group) through
the *same* sequence of fixed-horizon runs and control-plane actions,
then compares per-group fingerprints — the full operation history,
replica states, and network counters, canonically serialized.  Equality
is exact string equality: the parallel backend is only trustworthy
because this suite pins it to the serial semantics byte for byte.

In-process parallel mode is used for most cases (same simulation
semantics as forked workers, minus the process plumbing, and fast
enough to afford G=4); one spot check runs real forked workers.
"""

import pytest

from repro.core.config import ChtConfig
from repro.objects.kvstore import KVStoreSpec, increment, put
from repro.shard import ParallelShardedCluster, ShardedCluster, group_fingerprint

SEED = 11
SLOTS = 8
HORIZON = 2600.0


def _build(parallel, groups, use_processes=False, **kwargs):
    facade = ParallelShardedCluster if parallel else ShardedCluster
    if parallel:
        kwargs["use_processes"] = use_processes
    return facade(
        KVStoreSpec(),
        ChtConfig(n=3),
        num_groups=groups,
        num_slots=SLOTS,
        seed=SEED,
        num_clients=2,
        **kwargs,
    ).start()


def _drive_steady_writes(cluster):
    """Interleaved writes from two routers, submitted at aligned times."""
    cluster.run_to(500.0)  # elections settle identically on both backends
    r0, r1 = cluster.router(0), cluster.router(1)
    futures = []
    for round_index, at in enumerate((500.0, 900.0, 1300.0, 1700.0)):
        futures.append(r0.submit(put(f"p{round_index}", f"v{round_index}")))
        futures.append(r1.submit(increment(f"i{round_index % 2}")))
        cluster.run_to(at + 400.0)
    cluster.run_to(HORIZON)
    assert all(f.done for f in futures), "scenario ops must all complete"
    return futures


def _drive_handoff(cluster):
    """Writes racing a mid-run handoff of half of group 0's slots."""
    cluster.run_to(500.0)
    r0 = cluster.router(0)
    first = r0.submit(put("k1", "before"))
    cluster.run_to(900.0)
    handoff = cluster.spawn_handoff(0, 1)
    second = cluster.router(1).submit(increment("c1"))
    cluster.run_to(1600.0)
    third = r0.submit(put("k2", "after"))
    cluster.run_to(HORIZON)
    assert first.done and second.done and third.done
    assert handoff.done and len(cluster.handoffs) == 1
    return cluster.handoffs


def _crash_replica_zero(group, gid):
    # Scripted fault, scheduled inside the group's own simulator: the
    # serial backend runs this closure on the shared sim, a worker runs
    # it on its private sim — the resulting trace must not differ.
    group.sim.schedule_at(700.0, group.replicas[0].crash)
    group.sim.schedule_at(1400.0, group.replicas[0].recover)


def _drive_through_crash(cluster):
    cluster.run_to(500.0)
    r0 = cluster.router(0)
    futures = [r0.submit(put("k3", "pre-crash"))]
    cluster.run_to(1000.0)  # replica 0 of every group is down here
    futures.append(r0.submit(increment("c3")))
    cluster.run_to(2000.0)  # recovered and caught up
    futures.append(r0.submit(put("k4", "post-recovery")))
    cluster.run_to(HORIZON)
    assert all(f.done for f in futures)
    return futures


def _fingerprints(cluster, parallel, groups):
    if parallel:
        prints = cluster.fingerprints()
        return [prints[f"g{g}"] for g in range(groups)]
    return [group_fingerprint(cluster.groups[g]) for g in range(groups)]


def _compare(drive, groups, use_processes=False, **kwargs):
    serial = _build(False, groups, **kwargs)
    drive(serial)
    expected = _fingerprints(serial, False, groups)

    parallel = _build(True, groups, use_processes=use_processes, **kwargs)
    try:
        drive(parallel)
        actual = _fingerprints(parallel, True, groups)
    finally:
        parallel.close()

    for g in range(groups):
        assert actual[g] == expected[g], (
            f"group {g} trace diverged between serial and parallel backends"
        )
    return serial, expected


@pytest.mark.parametrize("groups", [2, 4])
def test_steady_writes_trace_identical(groups):
    _compare(_drive_steady_writes, groups)


@pytest.mark.parametrize("groups", [2, 4])
def test_mid_run_handoff_trace_identical(groups):
    serial = _build(False, groups)
    serial_handoffs = _drive_handoff(serial)
    expected = _fingerprints(serial, False, groups)

    parallel = _build(True, groups)
    try:
        parallel_handoffs = _drive_handoff(parallel)
        actual = _fingerprints(parallel, True, groups)
        # The control-plane record — map versions, freeze/install
        # timestamps — must match to the float, not just the group
        # traces.
        assert parallel_handoffs == serial_handoffs
    finally:
        parallel.close()
    assert actual == expected


@pytest.mark.parametrize("groups", [2, 4])
def test_leader_crash_trace_identical(groups):
    _compare(_drive_through_crash, groups,
             group_setup=None, on_started=_crash_replica_zero)


def test_forked_workers_match_the_serial_trace():
    """The real thing: G=4 with one forked worker per group, a scripted
    crash, and a mid-run handoff — byte-identical to the shared-sim run."""
    def drive(cluster):
        cluster.run_to(500.0)
        r0 = cluster.router(0)
        first = r0.submit(put("k1", "x"))
        cluster.run_to(900.0)
        handoff = cluster.spawn_handoff(0, 1)
        second = cluster.router(1).submit(increment("c1"))
        cluster.run_to(HORIZON)
        assert first.done and second.done and handoff.done

    _compare(drive, groups=4, use_processes=True,
             on_started=_crash_replica_zero)
