"""The routing client: placement, redirects, and cross-shard exactly-once.

Key facts (sha256-based, stable): with ``num_slots=4`` and two groups,
group 0 owns slots {0, 2} and group 1 owns {1, 3}; ``"k9"`` is in slot
0, ``"k0"`` in slot 1, ``"k2"`` in slot 2, ``"k3"`` in slot 3.
"""

import pytest

from repro.core.config import ChtConfig
from repro.objects.kvstore import KVStoreSpec, get, increment, put, scan
from repro.shard import ShardedCluster, WrongShard, freeze_op
from repro.shard.router import RoutingError

KEY_IN_SLOT = {0: "k9", 1: "k0", 2: "k2", 3: "k3"}


def make_cluster(seed=0, **kwargs):
    cluster = ShardedCluster(
        KVStoreSpec(),
        ChtConfig(n=3),
        num_groups=2,
        num_slots=4,
        seed=seed,
        **kwargs,
    ).start()
    cluster.run_until_leaders()
    return cluster


def await_op(cluster, future, timeout=30_000.0):
    assert cluster.run_until(lambda: future.done, timeout), "op stuck"
    return future.value


def assert_exactly_once(router):
    """Structural exactly-once: every routed op saw exactly one
    committed non-WrongShard reply across all its attempts."""
    for op_id, attempts in router.attempts.items():
        effective = [
            (gid, r) for gid, r in attempts
            if not isinstance(r, WrongShard)
        ]
        assert len(effective) == 1, (op_id, attempts)


def test_routes_by_key_to_the_owning_group():
    cluster = make_cluster()
    router = cluster.router(0)
    await_op(cluster, router.submit(put(KEY_IN_SLOT[0], "a")))
    await_op(cluster, router.submit(put(KEY_IN_SLOT[1], "b")))
    assert router.redirects == 0
    # Each op's single attempt went to the slot's owner.
    groups = [a[0][0] for a in router.attempts.values()]
    assert groups == [0, 1]
    assert await_op(cluster, router.submit(get(KEY_IN_SLOT[1]))) == "b"


def test_stale_router_chases_wrong_shard_to_the_new_owner():
    cluster = make_cluster()
    router = cluster.router(0)
    await_op(cluster, router.submit(put(KEY_IN_SLOT[2], 7)))
    stale_version = router.map.version
    await_op(cluster, cluster.spawn_handoff(0, 1, slots={2}))
    assert router.map.version == stale_version  # not refreshed yet

    value = await_op(cluster, router.submit(get(KEY_IN_SLOT[2])))
    assert value == 7
    assert router.redirects >= 1
    assert router.map.version == cluster.map.version  # refreshed
    # The read's attempt list shows the WrongShard hop then the answer.
    attempts = router.attempts[("router", 0, 2)]
    assert isinstance(attempts[0][1], WrongShard)
    assert attempts[0][0] == 0 and attempts[-1][0] == 1
    assert_exactly_once(router)


def test_redirect_instant_and_counter_emitted():
    cluster = make_cluster(obs=True)
    router = cluster.router(0)
    await_op(cluster, cluster.spawn_handoff(0, 1, slots={2}))
    await_op(cluster, router.submit(get(KEY_IN_SLOT[2])))
    redirects = [
        i for i in cluster.obs.tracer.instants
        if i.name == "router.redirect"
    ]
    assert len(redirects) == router.redirects >= 1
    assert redirects[0].attrs["group"] == 0


def test_one_outstanding_rmw_per_router():
    cluster = make_cluster()
    router = cluster.router(0)
    first = router.submit(increment("k0"))
    with pytest.raises(RuntimeError, match="outstanding RMW"):
        router.submit(increment("k2"))
    await_op(cluster, first)
    # Reads are not limited, and a finished RMW frees the slot.
    router.submit(increment("k2"))


def test_unpartitionable_op_rejected_at_the_router():
    cluster = make_cluster()
    with pytest.raises(ValueError, match="no partition key"):
        cluster.router(0).submit(scan())


def test_coordinator_session_is_not_routable():
    cluster = make_cluster(num_clients=1)
    with pytest.raises(ValueError, match="not routable"):
        cluster.router(1)


def test_redirect_races_a_retransmission_exactly_once():
    """The satellite scenario: an increment's first transmission is lost,
    the slot moves while the session is retrying, and the retransmitted
    request commits at the source only as WrongShard — so the redirect
    applies the increment exactly once at the new owner."""
    cluster = make_cluster(seed=2)
    router = cluster.router(0)
    key = KEY_IN_SLOT[2]  # group 0's slot 2

    # Cut the router's group-0 session off before it can deliver the
    # request; the session-layer retry will carry it after the heal.
    session0 = cluster.groups[0].clients[0]
    start = cluster.sim.now
    cluster.groups[0].net.isolate(session0.pid, start, start + 400.0)
    future = router.submit(increment(key))
    cluster.run(5.0)
    assert not future.done

    handoff = cluster.spawn_handoff(0, 1, slots={2})
    await_op(cluster, handoff, timeout=60_000.0)
    assert not future.done  # still partitioned from group 0

    assert await_op(cluster, future, timeout=60_000.0) == 1
    attempts = router.attempts[("router", 0, 1)]
    assert [gid for gid, _ in attempts] == [0, 1]
    assert isinstance(attempts[0][1], WrongShard)
    assert attempts[1][1] == 1
    assert_exactly_once(router)
    assert await_op(cluster, router.submit(get(key))) == 1


def test_duplication_storm_stays_exactly_once_across_a_handoff():
    """Every message delivered twice on both groups while increments
    cross a handoff: per-group reply caches plus the pinning rule must
    keep each increment's effect single."""
    cluster = make_cluster(seed=5)
    for group in cluster.groups:
        group.net.dup_rule = lambda src, dst, msg, now: True
    router = cluster.router(0)
    key = KEY_IN_SLOT[2]

    total = 0
    for i in range(3):
        total = await_op(cluster, router.submit(increment(key)),
                         timeout=60_000.0)
    await_op(cluster, cluster.spawn_handoff(0, 1, slots={2}),
             timeout=60_000.0)
    for i in range(3):
        total = await_op(cluster, router.submit(increment(key)),
                         timeout=60_000.0)
    assert total == 6
    assert await_op(cluster, router.submit(get(key)),
                    timeout=60_000.0) == 6
    assert_exactly_once(router)


def test_router_gives_up_after_max_redirects():
    cluster = make_cluster()
    # A map that permanently names the wrong owner: freeze slot 2 at
    # group 0 but never install it anywhere, then pin the router's map.
    coordinator = cluster.coordinator(0)
    await_op(cluster, coordinator.submit(freeze_op({2}, 2)))
    router = cluster.router(0, retry_backoff=1.0, max_redirects=3)
    future = router.submit(get(KEY_IN_SLOT[2]))
    value = await_op(cluster, future, timeout=60_000.0)
    # The budget surfaces a prompt, inspectable error — the future
    # resolves instead of the client spinning on a group that is down.
    assert isinstance(value, RoutingError)
    assert "never converged" in str(value)
    assert value.attempts == 3
    assert router.gave_up == 1
    # Every attempt on the way out was a committed WrongShard.
    attempts = router.attempts[("router", 0, 1)]
    assert len(attempts) == 3
    assert all(isinstance(r, WrongShard) for _, r in attempts)


def test_router_backoff_grows_exponentially_to_the_cap():
    cluster = make_cluster()
    coordinator = cluster.coordinator(0)
    await_op(cluster, coordinator.submit(freeze_op({2}, 2)))
    base = 100.0
    router = cluster.router(0, retry_backoff=base, max_redirects=5,
                            backoff_cap=400.0)
    start = cluster.sim.now
    future = router.submit(get(KEY_IN_SLOT[2]))
    value = await_op(cluster, future, timeout=120_000.0)
    assert isinstance(value, RoutingError)
    elapsed = cluster.sim.now - start
    # Waits: 100 + 200 + 400 + 400 + 400 = 1500 plus five round trips;
    # fixed backoff would spend only 500 waiting.  The elapsed window
    # brackets the capped-exponential schedule.
    assert elapsed >= 1500.0
    assert elapsed < 6000.0


def test_router_rejects_bad_budget_parameters():
    cluster = make_cluster()
    with pytest.raises(ValueError, match="max_redirects"):
        cluster.router(0, max_redirects=0)
    with pytest.raises(ValueError, match="backoff_cap"):
        cluster.router(0, retry_backoff=10.0, backoff_cap=1.0)


def test_router_budget_error_does_not_break_later_ops():
    """After a RoutingError on a stuck slot, other slots keep working
    and exactly-once accounting stays clean for them."""
    cluster = make_cluster()
    coordinator = cluster.coordinator(0)
    await_op(cluster, coordinator.submit(freeze_op({2}, 2)))
    router = cluster.router(0, retry_backoff=1.0, max_redirects=2)
    stuck = router.submit(get(KEY_IN_SLOT[2]))
    assert isinstance(await_op(cluster, stuck, timeout=60_000.0),
                      RoutingError)
    await_op(cluster, router.submit(put(KEY_IN_SLOT[1], "ok")))
    assert await_op(cluster, router.submit(get(KEY_IN_SLOT[1]))) == "ok"
    healthy = {
        op_id: attempts for op_id, attempts in router.attempts.items()
        if op_id != ("router", 0, 1)
    }
    for op_id, attempts in healthy.items():
        effective = [r for _, r in attempts if not isinstance(r, WrongShard)]
        assert len(effective) == 1, (op_id, attempts)
