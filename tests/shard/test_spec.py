"""ShardedSpec: ownership fencing, freeze/install, conflicts, fingerprints.

These are pure state-machine tests — no simulator, no cluster.  Key
facts baked in (stable, sha256-based): with ``num_slots=4``, ``"k0"``
hashes to slot 1, ``"k2"`` to slot 2, ``"k3"`` to slot 3, ``"k9"`` to
slot 0.
"""

import pytest

from repro.objects.counter import CounterSpec
from repro.objects.kvstore import KVStoreSpec, get, put, scan
from repro.shard import (
    FREEZE,
    INSTALL,
    ShardedSpec,
    WrongShard,
    freeze_op,
    install_op,
)

KEY_IN_SLOT = {1: "k0", 2: "k2", 3: "k3", 0: "k9"}


def make_spec(owned=(0, 1)):
    return ShardedSpec(KVStoreSpec(), num_slots=4, owned=owned)


def test_unshardable_inner_rejected():
    # A counter's state is one integer — not key-addressable.
    with pytest.raises(TypeError, match="cannot be sharded"):
        ShardedSpec(CounterSpec(), num_slots=4, owned=[0])


def test_owned_slot_validation():
    with pytest.raises(ValueError, match="out of range"):
        make_spec(owned=[0, 7])
    with pytest.raises(ValueError, match="num_slots"):
        ShardedSpec(KVStoreSpec(), num_slots=0, owned=[])


def test_initial_state():
    state = make_spec().initial_state()
    assert state.owned == frozenset({0, 1})
    assert state.version == 1


def test_owned_key_delegates_to_inner():
    spec = make_spec(owned=(1,))
    state = spec.initial_state()
    state, response = spec.apply(state, put(KEY_IN_SLOT[1], "v"))
    assert response is None
    state, response = spec.apply(state, get(KEY_IN_SLOT[1]))
    assert response == "v"
    assert state.owned == frozenset({1})


def test_unowned_key_commits_wrong_shard_without_effect():
    spec = make_spec(owned=(1,))
    state = spec.initial_state()
    before = state
    state, response = spec.apply(state, put(KEY_IN_SLOT[2], "v"))
    assert response == WrongShard(1)
    assert state == before  # committed, but a no-op


def test_unpartitionable_op_rejected():
    spec = make_spec()
    with pytest.raises(ValueError, match="un-partitionable"):
        spec.apply(spec.initial_state(), scan())


def test_freeze_exports_and_drops_only_owned_intersection():
    spec = make_spec(owned=(0, 1, 2))
    state = spec.initial_state()
    for slot in (0, 1, 2):
        state, _ = spec.apply(state, put(KEY_IN_SLOT[slot], slot * 10))
    state, items = spec.apply(state, freeze_op({1, 3}, version=2))
    # Slot 3 was never owned; only slot 1's item moves.
    assert items == ((KEY_IN_SLOT[1], 10),)
    assert state.owned == frozenset({0, 2})
    assert state.version == 2
    # The frozen key is gone; the kept keys remain.
    _, response = spec.apply(state, get(KEY_IN_SLOT[1]))
    assert response == WrongShard(2)
    _, response = spec.apply(state, get(KEY_IN_SLOT[2]))
    assert response == 20


def test_freeze_of_departed_slots_is_empty():
    spec = make_spec(owned=(0,))
    state = spec.initial_state()
    state, items = spec.apply(state, freeze_op({1, 2}, version=5))
    assert items == ()
    assert state.owned == frozenset({0})


def test_install_merges_items_and_grows_ownership():
    spec = make_spec(owned=(0,))
    state = spec.initial_state()
    items = ((KEY_IN_SLOT[1], "a"), (KEY_IN_SLOT[2], "b"))
    state, count = spec.apply(state, install_op({1, 2}, 3, items))
    assert count == 2
    assert state.owned == frozenset({0, 1, 2})
    assert state.version == 3
    _, response = spec.apply(state, get(KEY_IN_SLOT[2]))
    assert response == "b"


def test_version_never_goes_backwards():
    spec = make_spec(owned=(0, 1))
    state = spec.initial_state()
    state, _ = spec.apply(state, install_op({2}, 7, ()))
    assert state.version == 7
    # A stale freeze (lower version) still moves slots but keeps v7.
    state, _ = spec.apply(state, freeze_op({2}, 3))
    assert state.version == 7


def test_freeze_and_install_are_not_reads():
    spec = make_spec()
    assert not spec.is_read(freeze_op({0}, 2))
    assert not spec.is_read(install_op({0}, 2, ()))
    assert spec.is_read(get("k0"))
    assert not spec.is_read(put("k0", 1))


def test_every_read_conflicts_with_freeze_and_install():
    # The read-fencing linchpin: the conflict-aware read rule makes a
    # read wait out any concurrent ownership change, so no read is
    # answered from a frozen range.
    spec = make_spec()
    for rmw in (freeze_op({3}, 2), install_op({3}, 2, ())):
        assert spec.conflicts(get("unrelated-key"), rmw)
    # Ordinary conflicts still delegate to the inner key-granular rule.
    assert spec.conflicts(get("k0"), put("k0", 1))
    assert not spec.conflicts(get("k0"), put("other", 1))


def test_partition_key_delegation():
    spec = make_spec()
    assert spec.partition_key(get("k0")) == "k0"
    assert spec.partition_key(freeze_op({0}, 2)) is None
    assert spec.partition_key(install_op({0}, 2, ())) is None


def test_fingerprint_covers_ownership_and_version():
    spec = make_spec(owned=(0, 1))
    base = spec.initial_state()
    shrunk, _ = spec.apply(base, freeze_op({1}, 2))
    # Same inner contents (empty), different ownership: the checker
    # must never memoize these as one configuration.
    assert spec.fingerprint(base) != spec.fingerprint(shrunk)
    names = {FREEZE, INSTALL}
    assert freeze_op({0}, 1).name in names
    assert install_op({0}, 1, ()).name in names
