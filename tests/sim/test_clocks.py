"""Tests for process clocks and the clock model."""

import random

import pytest

from repro.sim.clocks import Clock, ClockModel, TrueTimeClock


class TestClock:
    def test_default_tracks_real_time(self):
        clock = Clock()
        assert clock.local(0.0) == 0.0
        assert clock.local(10.0) == 10.0

    def test_offset(self):
        clock = Clock(offset=1.5)
        assert clock.local(10.0) == 11.5
        assert clock.skew(10.0) == 1.5

    def test_rate(self):
        clock = Clock(rate=2.0)
        assert clock.local(10.0) == 20.0

    def test_inverse_roundtrip(self):
        clock = Clock(offset=0.7, rate=1.0)
        for real in (0.0, 1.0, 123.456):
            assert clock.real(clock.local(real)) == pytest.approx(real)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            Clock(rate=0.0)

    def test_segment_changes_rate(self):
        clock = Clock()
        clock.add_segment(10.0, rate=2.0)
        assert clock.local(10.0) == 10.0
        assert clock.local(15.0) == 20.0

    def test_jump_is_monotonic_only_forward(self):
        clock = Clock()
        clock.add_segment(5.0, rate=1.0, jump=3.0)
        assert clock.local(5.0) == 8.0
        with pytest.raises(ValueError):
            clock.add_segment(6.0, rate=1.0, jump=-1.0)

    def test_monotonicity_across_segments(self):
        clock = Clock()
        clock.add_segment(3.0, rate=0.5)
        clock.add_segment(7.0, rate=2.0, jump=1.0)
        readings = [clock.local(t / 10) for t in range(0, 120)]
        assert readings == sorted(readings)

    def test_inverse_with_jump_gap_maps_to_jump_instant(self):
        clock = Clock()
        clock.add_segment(5.0, rate=1.0, jump=4.0)
        # Local values in (5, 9) never appear; earliest real time showing
        # at least that value is the jump instant.
        assert clock.real(7.0) == pytest.approx(5.0)
        assert clock.real(9.0) == pytest.approx(5.0)
        assert clock.real(10.0) == pytest.approx(6.0)

    def test_inverse_before_initial_value_raises(self):
        clock = Clock(offset=5.0)
        with pytest.raises(ValueError):
            clock.real(4.0)

    def test_segments_must_be_ordered(self):
        clock = Clock()
        clock.add_segment(5.0, rate=1.0)
        with pytest.raises(ValueError):
            clock.add_segment(3.0, rate=1.0)


class TestClockModel:
    def test_offsets_respect_epsilon(self):
        model = ClockModel(10, epsilon=4.0, rng=random.Random(7))
        for real in (0.0, 100.0):
            assert model.max_pairwise_skew(real) <= 4.0

    def test_explicit_offsets(self):
        model = ClockModel(3, epsilon=2.0, offsets=[-1.0, 0.0, 1.0])
        assert model.local(0, 10.0) == 9.0
        assert model.local(2, 10.0) == 11.0

    def test_rejects_offsets_outside_envelope(self):
        with pytest.raises(ValueError):
            ClockModel(2, epsilon=2.0, offsets=[0.0, 1.5])

    def test_real_inverse(self):
        model = ClockModel(3, epsilon=2.0, offsets=[-1.0, 0.0, 1.0])
        assert model.real(0, 9.0) == pytest.approx(10.0)

    def test_desynchronize_breaks_envelope(self):
        model = ClockModel(2, epsilon=2.0, offsets=[0.0, 0.0])
        model.desynchronize(1, real_start=10.0, jump=50.0)
        assert model.max_pairwise_skew(11.0) > 2.0

    def test_resynchronize_restores_envelope(self):
        model = ClockModel(2, epsilon=2.0, offsets=[0.0, 0.0])
        model.desynchronize(1, real_start=10.0, jump=50.0)
        model.resynchronize(1, real_start=20.0)
        # After enough time the slowed clock re-enters the envelope.
        assert model.max_pairwise_skew(200.0) <= 2.0
        # And stays monotone throughout.
        readings = [model.local(1, t) for t in range(0, 300)]
        assert readings == sorted(readings)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ClockModel(0, epsilon=1.0)
        with pytest.raises(ValueError):
            ClockModel(2, epsilon=-1.0)
        with pytest.raises(ValueError):
            ClockModel(2, epsilon=1.0, offsets=[0.0])


class TestTrueTime:
    def test_interval_contains_real_time(self):
        model = ClockModel(1, epsilon=4.0, offsets=[2.0])
        tt = TrueTimeClock(model[0], uncertainty=2.0)
        for real in (0.0, 5.0, 99.0):
            earliest, latest = tt.now(real)
            assert earliest <= real <= latest

    def test_interval_width(self):
        tt = TrueTimeClock(Clock(), uncertainty=3.0)
        earliest, latest = tt.now(10.0)
        assert latest - earliest == pytest.approx(6.0)

    def test_rejects_negative_uncertainty(self):
        with pytest.raises(ValueError):
            TrueTimeClock(Clock(), uncertainty=-1.0)
