"""Tests for the discrete-event simulator core."""

import pytest

from repro.sim.core import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, lambda: order.append("c"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(2.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_run_fifo():
    sim = Simulator()
    order = []
    for tag in "abc":
        sim.schedule(1.0, lambda tag=tag: order.append(tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(5.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5.5]
    assert sim.now == 5.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, lambda: fired.append(1))
    sim.run(until=5.0)
    assert fired == []
    assert sim.now == 5.0
    sim.run()
    assert fired == [1]


def test_run_for_is_relative():
    sim = Simulator()
    sim.run_for(3.0)
    assert sim.now == 3.0
    sim.run_for(2.0)
    assert sim.now == 5.0


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append(1))
    event.cancel()
    sim.run()
    assert fired == []


def test_schedule_during_event():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(1.0, lambda: order.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert order == ["first", "second"]
    assert sim.now == 2.0


def test_cannot_schedule_into_the_past():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_stop_when_predicate():
    sim = Simulator()
    count = []
    for i in range(10):
        sim.schedule(float(i + 1), lambda: count.append(1))
    sim.run(stop_when=lambda: len(count) >= 3)
    assert len(count) == 3


def test_max_events():
    sim = Simulator()
    count = []
    for i in range(10):
        sim.schedule(float(i + 1), lambda: count.append(1))
    sim.run(max_events=4)
    assert len(count) == 4


def test_stop_exits_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]


def test_determinism_same_seed():
    def trace(seed):
        sim = Simulator(seed=seed)
        values = []
        for _ in range(20):
            sim.schedule(sim.rng.uniform(0, 10),
                         lambda: values.append(sim.now))
        sim.run()
        return values

    assert trace(42) == trace(42)
    assert trace(42) != trace(43)


def test_fork_rng_streams_are_independent():
    sim = Simulator(seed=1)
    a = sim.fork_rng("a")
    b = sim.fork_rng("b")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_pending_events_excludes_cancelled():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    event = sim.schedule(2.0, lambda: None)
    event.cancel()
    assert sim.pending_events == 1


def test_pending_events_tracks_schedule_cancel_pop():
    # Regression for the O(1) tombstone accounting: the count must stay
    # exact through any interleaving of scheduling, cancellation (before
    # and after compaction), and event execution.
    sim = Simulator()
    events = [sim.schedule(float(i % 7) + 1.0, lambda: None)
              for i in range(2000)]
    assert sim.pending_events == 2000
    for ev in events[::2]:
        ev.cancel()
    assert sim.pending_events == 1000
    # Cancelling twice must not double-decrement.
    events[0].cancel()
    assert sim.pending_events == 1000
    sim.run(max_events=300)
    assert sim.pending_events == 700
    extra = sim.schedule(50.0, lambda: None)
    assert sim.pending_events == 701
    extra.cancel()
    assert sim.pending_events == 700
    sim.run()
    assert sim.pending_events == 0
    assert sim.events_processed == 1000


def test_cancel_after_fire_is_harmless():
    sim = Simulator()
    fired = []
    ev = sim.schedule(1.0, lambda: fired.append(1))
    later = sim.schedule(2.0, lambda: fired.append(2))
    sim.run(max_events=1)
    ev.cancel()  # already fired: must not disturb live bookkeeping
    assert sim.pending_events == 1
    sim.run()
    assert fired == [1, 2]


def test_call_at_and_call_later_pass_args():
    sim = Simulator()
    seen = []
    sim.call_at(2.0, lambda a, b: seen.append((sim.now, a, b)), "x", 1)
    sim.call_later(1.0, seen.append, "first")
    sim.run()
    assert seen == ["first", (2.0, "x", 1)]


def test_schedule_args_passed_to_callback():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "a")
    sim.schedule_at(2.0, lambda x, y: seen.append(x + y), 1, 2)
    sim.run()
    assert seen == ["a", 3]


def test_schedule_many_bulk():
    sim = Simulator()
    order = []
    n = sim.schedule_many(
        (float(3 - i), lambda i=i: order.append(i)) for i in range(3)
    )
    assert n == 3
    assert sim.pending_events == 3
    sim.run()
    assert order == [2, 1, 0]  # delays 3,2,1 -> reverse scheduling order
    with pytest.raises(SimulationError):
        sim.schedule_many([(-1.0, lambda: None)])


def test_fifo_interleaves_handles_and_fast_path():
    # Same-time events fire in scheduling order regardless of which
    # scheduling API queued them.
    sim = Simulator()
    order = []
    sim.schedule(1.0, order.append, "a")
    sim.call_at(1.0, order.append, "b")
    sim.call_later(1.0, order.append, "c")
    sim.schedule_many([(1.0, lambda: order.append("d"))])
    sim.run()
    assert order == ["a", "b", "c", "d"]


def test_compaction_preserves_order_and_count():
    # Drive the heap well past the compaction threshold with mostly
    # cancelled events; survivors must still fire in (time, seq) order.
    sim = Simulator()
    order = []
    keep = []
    for i in range(3000):
        ev = sim.schedule(float(i % 11) + 1.0, lambda i=i: order.append(i))
        if i % 10:
            ev.cancel()
        else:
            keep.append(i)
    assert sim.pending_events == len(keep)
    sim.run()
    expected = sorted(keep, key=lambda i: (float(i % 11) + 1.0, i))
    assert order == expected


def test_compaction_inside_callback_keeps_run_loop_live():
    # Regression: _compact() must mutate the heap in place, not rebind
    # self._heap — run() caches the heap list as a local, so a rebind
    # would strand the loop on the old list and silently drop every event
    # scheduled after a mid-run compaction (the crash/failure-injection
    # pattern: a callback cancels a large batch of timers, then the next
    # schedule trips the tombstone threshold).
    sim = Simulator()
    fired = []
    timers = [sim.schedule(100.0 + i, lambda: fired.append("timer"))
              for i in range(1500)]

    def crash_and_reschedule():
        for ev in timers:  # cancel >50% of a >512-entry heap
            ev.cancel()
        # This schedule trips the compaction threshold; the follow-up
        # event must still fire even though run() is mid-loop.
        sim.schedule(1.0, lambda: fired.append("after-compact"))
        sim.call_later(2.0, lambda: fired.append("fast-path"))

    sim.schedule(1.0, crash_and_reschedule)
    sim.run()
    assert fired == ["after-compact", "fast-path"]
    assert sim.pending_events == 0


def test_fast_paths_trigger_compaction():
    # call_at and schedule_many must also sweep tombstones once they
    # dominate the heap, not just schedule_at.
    for fast_schedule in (
        lambda sim: sim.call_at(sim.now + 500.0, lambda: None),
        lambda sim: sim.schedule_many([(500.0, lambda: None)]),
    ):
        sim = Simulator()
        events = [sim.schedule(1000.0 + i, lambda: None) for i in range(1400)]
        for ev in events:
            ev.cancel()
        assert len(sim._heap) == 1400  # tombstones still resident
        fast_schedule(sim)
        assert len(sim._heap) == 1  # sweep ran; only the live entry remains
        assert sim.pending_events == 1


def test_until_skips_past_cancelled_head():
    # A cancelled event inside the horizon must not let a live event
    # beyond the horizon run.
    sim = Simulator()
    fired = []
    ev = sim.schedule(1.0, lambda: fired.append("dead"))
    sim.schedule(10.0, lambda: fired.append("late"))
    ev.cancel()
    sim.run(until=5.0)
    assert fired == []
    assert sim.now == 5.0
    sim.run()
    assert fired == ["late"]


def test_stop_when_with_until_horizon():
    sim = Simulator()
    count = []
    for i in range(10):
        sim.schedule(float(i + 1), lambda: count.append(1))
    sim.run(until=20.0, stop_when=lambda: len(count) >= 3)
    assert len(count) == 3
    assert sim.now == 3.0
    sim.run(until=20.0)
    assert len(count) == 10
    assert sim.now == 20.0


def test_fork_rng_deterministic_per_seed_and_label():
    def draws(seed, label):
        return [Simulator(seed=seed).fork_rng(label).random()
                for _ in range(1)][0]

    assert draws(7, "net") == draws(7, "net")
    assert draws(7, "net") != draws(8, "net")
    assert draws(7, "net") != draws(7, "clock")


def test_fork_rng_independent_of_fork_order():
    # A label's stream depends only on (seed, label, occurrence index) --
    # forking other labels first must not reseed it.
    a = Simulator(seed=3)
    a.fork_rng("x")
    stream_after_x = a.fork_rng("net").random()

    b = Simulator(seed=3)
    stream_first = b.fork_rng("net").random()
    assert stream_after_x == stream_first

    # Repeated forks of the same label yield distinct streams, themselves
    # reproducible by position.
    c = Simulator(seed=3)
    first = c.fork_rng("net").random()
    second = c.fork_rng("net").random()
    assert first != second
    d = Simulator(seed=3)
    d.fork_rng("net")
    assert d.fork_rng("net").random() == second


def test_fork_rng_site_namespacing():
    # A sited fork is its own stream -- distinct from the bare label and
    # from other sites -- but identical across simulators with the same
    # seed, which is what lets a group's stream match between a shared
    # simulator and a dedicated per-group one.
    a = Simulator(seed=5)
    bare = a.fork_rng("network").random()
    g0 = a.fork_rng("network", site="g0").random()
    g1 = a.fork_rng("network", site="g1").random()
    assert len({bare, g0, g1}) == 3

    b = Simulator(seed=5)
    assert b.fork_rng("network", site="g0").random() == g0


def test_call_at_front_runs_before_same_time_events():
    sim = Simulator()
    order = []
    sim.schedule_at(5.0, lambda: order.append("normal"))
    sim.call_at_front(5.0, lambda: order.append("front-a"))
    sim.call_at_front(5.0, lambda: order.append("front-b"))
    sim.schedule_at(4.0, lambda: order.append("earlier"))
    sim.run()
    # Front events beat normal events at the same instant, FIFO among
    # themselves, and never jump ahead of strictly earlier events.
    assert order == ["earlier", "front-a", "front-b", "normal"]


def test_call_at_front_rejects_the_past():
    sim = Simulator()
    sim.schedule_at(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at_front(5.0, lambda: None)


def test_exclusive_run_leaves_boundary_events_pending():
    sim = Simulator()
    fired = []
    sim.schedule_at(5.0, lambda: fired.append("early"))
    sim.schedule_at(10.0, lambda: fired.append("boundary"))
    sim.run(until=10.0, exclusive=True)
    assert fired == ["early"]
    assert sim.now == 10.0  # clock still advances to the window end
    # The boundary event is not lost: an inclusive pass picks it up.
    sim.run(until=10.0)
    assert fired == ["early", "boundary"]


def test_exclusive_windows_compose_to_an_inclusive_run():
    def build():
        sim = Simulator()
        log = []
        for t in (1.0, 2.5, 5.0, 7.5, 10.0):
            sim.schedule_at(t, lambda t=t: log.append((t, sim.now)))
        return sim, log

    serial_sim, serial_log = build()
    serial_sim.run(until=10.0)

    windowed_sim, windowed_log = build()
    for t_end in (2.5, 5.0, 7.5, 10.0):
        windowed_sim.run(until=t_end, exclusive=True)
    windowed_sim.run(until=10.0)  # boundary pass
    assert windowed_log == serial_log
    assert windowed_sim.now == serial_sim.now == 10.0
