"""Tests for the discrete-event simulator core."""

import pytest

from repro.sim.core import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, lambda: order.append("c"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(2.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_run_fifo():
    sim = Simulator()
    order = []
    for tag in "abc":
        sim.schedule(1.0, lambda tag=tag: order.append(tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(5.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5.5]
    assert sim.now == 5.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, lambda: fired.append(1))
    sim.run(until=5.0)
    assert fired == []
    assert sim.now == 5.0
    sim.run()
    assert fired == [1]


def test_run_for_is_relative():
    sim = Simulator()
    sim.run_for(3.0)
    assert sim.now == 3.0
    sim.run_for(2.0)
    assert sim.now == 5.0


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append(1))
    event.cancel()
    sim.run()
    assert fired == []


def test_schedule_during_event():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(1.0, lambda: order.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert order == ["first", "second"]
    assert sim.now == 2.0


def test_cannot_schedule_into_the_past():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_stop_when_predicate():
    sim = Simulator()
    count = []
    for i in range(10):
        sim.schedule(float(i + 1), lambda: count.append(1))
    sim.run(stop_when=lambda: len(count) >= 3)
    assert len(count) == 3


def test_max_events():
    sim = Simulator()
    count = []
    for i in range(10):
        sim.schedule(float(i + 1), lambda: count.append(1))
    sim.run(max_events=4)
    assert len(count) == 4


def test_stop_exits_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]


def test_determinism_same_seed():
    def trace(seed):
        sim = Simulator(seed=seed)
        values = []
        for _ in range(20):
            sim.schedule(sim.rng.uniform(0, 10),
                         lambda: values.append(sim.now))
        sim.run()
        return values

    assert trace(42) == trace(42)
    assert trace(42) != trace(43)


def test_fork_rng_streams_are_independent():
    sim = Simulator(seed=1)
    a = sim.fork_rng("a")
    b = sim.fork_rng("b")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_pending_events_excludes_cancelled():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    event = sim.schedule(2.0, lambda: None)
    event.cancel()
    assert sim.pending_events == 1
