"""The optimized engine is trace-equivalent to the pre-optimization one.

``benchmarks/_legacy_engine.LegacySimulator`` reimplements the original
event loop (dataclass events, flag cancellation, O(n) pending scan) behind
the current API.  Running the full CHT stack on both engines with the same
seed must produce byte-identical operation traces: identical op records,
message counts, event counts, and final clock — the optimizations changed
the engine's cost model, never its semantics.
"""

from __future__ import annotations

import sys
from pathlib import Path

import repro.core.client as client_mod
from repro.core.config import ChtConfig
from repro.objects.kvstore import KVStoreSpec, get, put
from repro.sim.core import Simulator

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

from _legacy_engine import LegacySimulator  # noqa: E402


def _run_cht_workload(sim_cls, seed: int):
    """A full CHT run touching every engine feature.

    Writes and reads from every process exercise the fire-and-forget
    delivery path; an isolation plus heal exercises timer cancellation
    (crash/expiry paths) and the lease-expiry wait; the final quiet run
    exercises the ``until`` horizon.
    """
    original = client_mod.Simulator
    client_mod.Simulator = sim_cls
    try:
        cluster = client_mod.ChtCluster(KVStoreSpec(), ChtConfig(n=5),
                                        seed=seed)
        cluster.start()
        leader = cluster.run_until_leader()
        cluster.execute(0, put("x", 0))
        cluster.run(200.0)
        futures = []
        for i in range(30):
            futures.append(cluster.submit(0, put("hot", i)))
            for pid in range(5):
                futures.append(cluster.submit(pid, get("hot")))
            cluster.run(10.0)
        victim = max(r.pid for r in cluster.replicas if r.pid != leader.pid)
        cluster.net.isolate(victim, start=cluster.sim.now)
        cluster.execute(0, put("hot", 99), timeout=8000.0)
        cluster.net.heal_all()
        cluster.run(500.0)
        cluster.run_until(lambda: all(f.done for f in futures),
                          timeout=20_000.0)
        assert all(f.done for f in futures)
        cluster.run(250.0)
        trace = [
            (r.op_id, r.pid, r.kind, repr(r.op), r.invoked_at,
             r.responded_at, repr(r.response), r.blocked, r.blocked_local)
            for r in cluster.stats.records
        ]
        return {
            "trace": trace,
            "messages": cluster.net.total_sent(),
            "by_category": dict(cluster.net.sent_by_category()),
            "events": cluster.sim.events_processed,
            "now": cluster.sim.now,
        }
    finally:
        client_mod.Simulator = original


def test_cht_trace_identical_on_both_engines():
    new = _run_cht_workload(Simulator, seed=11)
    old = _run_cht_workload(LegacySimulator, seed=11)
    assert new["trace"] == old["trace"]
    assert new["messages"] == old["messages"]
    assert new["by_category"] == old["by_category"]
    assert new["events"] == old["events"]
    assert new["now"] == old["now"]


def test_same_seed_same_engine_reproduces_exactly():
    first = _run_cht_workload(Simulator, seed=23)
    second = _run_cht_workload(Simulator, seed=23)
    assert first == second


def test_different_seed_differs():
    a = _run_cht_workload(Simulator, seed=11)
    b = _run_cht_workload(Simulator, seed=12)
    assert a != b
