"""Tests for fault-injection schedules."""

from dataclasses import dataclass

import pytest

from repro.sim.clocks import ClockModel
from repro.sim.core import Simulator
from repro.sim.failures import (
    ClockDesync,
    Crash,
    FaultSchedule,
    LossWindow,
    PartitionWindow,
    Recover,
)
from repro.sim.latency import FixedDelay
from repro.sim.network import Network
from repro.sim.process import Process


@dataclass(frozen=True)
class Msg:
    pass


class Sink(Process):
    def __init__(self, *args):
        super().__init__(*args)
        self.count = 0

    def on_message(self, src, msg):
        self.count += 1


def build(n=3):
    sim = Simulator(seed=1)
    clocks = ClockModel(n, epsilon=2.0)
    net = Network(sim, delta=10.0, post_gst_delay=FixedDelay(1.0))
    procs = [Sink(pid, sim, net, clocks) for pid in range(n)]
    return sim, clocks, net, procs


def test_crash_and_recover_schedule():
    sim, clocks, net, procs = build()
    plan = FaultSchedule(
        crashes=[Crash(pid=1, at=10.0)],
        recoveries=[Recover(pid=1, at=20.0)],
    )
    plan.arm(sim, net, procs, clocks)
    sim.run(until=15.0)
    assert procs[1].crashed
    sim.run(until=25.0)
    assert not procs[1].crashed


def test_partition_window():
    sim, clocks, net, procs = build()
    plan = FaultSchedule(
        partitions=[PartitionWindow(frozenset({0}), frozenset({1, 2}),
                                    start=5.0, end=15.0)]
    )
    plan.arm(sim, net, procs, clocks)
    sim.run(until=6.0)
    net.send(0, 1, Msg())
    sim.run(until=10.0)
    assert procs[1].count == 0
    sim.run(until=16.0)
    net.send(0, 1, Msg())
    sim.run()
    assert procs[1].count == 1


def test_loss_window_drops_all_at_prob_one():
    sim, clocks, net, procs = build()
    plan = FaultSchedule(losses=[LossWindow(start=0.0, end=50.0, prob=1.0)])
    plan.arm(sim, net, procs, clocks)
    for _ in range(10):
        net.send(0, 1, Msg())
    sim.run(until=60.0)
    assert procs[1].count == 0
    net.send(0, 1, Msg())
    sim.run()
    assert procs[1].count == 1


def test_loss_window_preserves_existing_drop_rule():
    sim, clocks, net, procs = build()
    net.drop_rule = lambda src, dst, msg, now: dst == 2
    plan = FaultSchedule(losses=[LossWindow(start=0.0, end=1.0, prob=0.0)])
    plan.arm(sim, net, procs, clocks)
    net.send(0, 2, Msg())
    net.send(0, 1, Msg())
    sim.run()
    assert procs[2].count == 0
    assert procs[1].count == 1


def test_loss_window_validates_probability():
    with pytest.raises(ValueError):
        LossWindow(start=0.0, end=1.0, prob=1.5)


def test_clock_desync_schedule():
    sim, clocks, net, procs = build()
    plan = FaultSchedule(
        desyncs=[ClockDesync(pid=0, start=10.0, jump=30.0, end=40.0)]
    )
    plan.arm(sim, net, procs, clocks)
    sim.run(until=20.0)
    assert clocks.max_pairwise_skew(20.0) > 2.0
    sim.run(until=300.0)
    assert clocks.max_pairwise_skew(300.0) <= 2.0


def test_clock_desync_requires_clock_model():
    sim, clocks, net, procs = build()
    plan = FaultSchedule(desyncs=[ClockDesync(pid=0, start=1.0, jump=5.0)])
    with pytest.raises(ValueError):
        plan.arm(sim, net, procs, clocks=None)
