"""Tests for fault-injection schedules."""

from dataclasses import dataclass

import pytest

from repro.sim.clocks import ClockModel
from repro.sim.core import Simulator
from repro.sim.failures import (
    ClockDesync,
    Crash,
    DelayBurstWindow,
    DuplicationWindow,
    FaultSchedule,
    LeaderCrash,
    LossWindow,
    OneWayPartitionWindow,
    PartitionWindow,
    Recover,
)
from repro.sim.latency import FixedDelay
from repro.sim.network import Network
from repro.sim.process import Process


@dataclass(frozen=True)
class Msg:
    pass


class Sink(Process):
    def __init__(self, *args):
        super().__init__(*args)
        self.count = 0

    def on_message(self, src, msg):
        self.count += 1


def build(n=3):
    sim = Simulator(seed=1)
    clocks = ClockModel(n, epsilon=2.0)
    net = Network(sim, delta=10.0, post_gst_delay=FixedDelay(1.0))
    procs = [Sink(pid, sim, net, clocks) for pid in range(n)]
    return sim, clocks, net, procs


def test_crash_and_recover_schedule():
    sim, clocks, net, procs = build()
    plan = FaultSchedule(
        crashes=[Crash(pid=1, at=10.0)],
        recoveries=[Recover(pid=1, at=20.0)],
    )
    plan.arm(sim, net, procs, clocks)
    sim.run(until=15.0)
    assert procs[1].crashed
    sim.run(until=25.0)
    assert not procs[1].crashed


def test_partition_window():
    sim, clocks, net, procs = build()
    plan = FaultSchedule(
        partitions=[PartitionWindow(frozenset({0}), frozenset({1, 2}),
                                    start=5.0, end=15.0)]
    )
    plan.arm(sim, net, procs, clocks)
    sim.run(until=6.0)
    net.send(0, 1, Msg())
    sim.run(until=10.0)
    assert procs[1].count == 0
    sim.run(until=16.0)
    net.send(0, 1, Msg())
    sim.run()
    assert procs[1].count == 1


def test_loss_window_drops_all_at_prob_one():
    sim, clocks, net, procs = build()
    plan = FaultSchedule(losses=[LossWindow(start=0.0, end=50.0, prob=1.0)])
    plan.arm(sim, net, procs, clocks)
    for _ in range(10):
        net.send(0, 1, Msg())
    sim.run(until=60.0)
    assert procs[1].count == 0
    net.send(0, 1, Msg())
    sim.run()
    assert procs[1].count == 1


def test_loss_window_preserves_existing_drop_rule():
    sim, clocks, net, procs = build()
    net.drop_rule = lambda src, dst, msg, now: dst == 2
    plan = FaultSchedule(losses=[LossWindow(start=0.0, end=1.0, prob=0.0)])
    plan.arm(sim, net, procs, clocks)
    net.send(0, 2, Msg())
    net.send(0, 1, Msg())
    sim.run()
    assert procs[2].count == 0
    assert procs[1].count == 1


def test_loss_window_validates_probability():
    with pytest.raises(ValueError):
        LossWindow(start=0.0, end=1.0, prob=1.5)


def test_clock_desync_schedule():
    sim, clocks, net, procs = build()
    plan = FaultSchedule(
        desyncs=[ClockDesync(pid=0, start=10.0, jump=30.0, end=40.0)]
    )
    plan.arm(sim, net, procs, clocks)
    sim.run(until=20.0)
    assert clocks.max_pairwise_skew(20.0) > 2.0
    sim.run(until=300.0)
    assert clocks.max_pairwise_skew(300.0) <= 2.0


def test_clock_desync_requires_clock_model():
    sim, clocks, net, procs = build()
    plan = FaultSchedule(desyncs=[ClockDesync(pid=0, start=1.0, jump=5.0)])
    with pytest.raises(ValueError):
        plan.arm(sim, net, procs, clocks=None)


def test_unknown_pid_rejected_at_arm_time():
    sim, clocks, net, procs = build()
    plan = FaultSchedule(crashes=[Crash(pid=9, at=10.0)])
    with pytest.raises(ValueError, match=r"unknown process 9"):
        plan.arm(sim, net, procs, clocks)


def test_unknown_pid_in_partition_names_the_entry():
    sim, clocks, net, procs = build()
    plan = FaultSchedule(
        partitions=[PartitionWindow(frozenset({0}), frozenset({7}),
                                    start=0.0, end=5.0)]
    )
    with pytest.raises(ValueError, match=r"PartitionWindow.*unknown process 7"):
        plan.arm(sim, net, procs, clocks)
    plan = FaultSchedule(
        one_way_partitions=[OneWayPartitionWindow(
            frozenset({7}), frozenset({0}), start=0.0, end=5.0)]
    )
    with pytest.raises(ValueError, match=r"unknown process 7"):
        plan.arm(sim, net, procs, clocks)


def test_leader_crash_requires_probe():
    sim, clocks, net, procs = build()
    plan = FaultSchedule(leader_crashes=[LeaderCrash(at=10.0)])
    with pytest.raises(ValueError, match="leader_probe"):
        plan.arm(sim, net, procs, clocks)


def test_leader_crash_hits_probed_leader_and_recovers():
    sim, clocks, net, procs = build()
    plan = FaultSchedule(leader_crashes=[LeaderCrash(at=10.0, downtime=30.0)])
    plan.arm(sim, net, procs, clocks, leader_probe=lambda: 2)
    sim.run(until=15.0)
    assert procs[2].crashed
    sim.run(until=45.0)
    assert not procs[2].crashed


def test_leader_crash_respects_majority_budget():
    sim, clocks, net, procs = build()  # n=3: at most 1 may be down
    plan = FaultSchedule(
        crashes=[Crash(pid=1, at=5.0)],
        recoveries=[Recover(pid=1, at=100.0)],
        leader_crashes=[LeaderCrash(at=10.0)],
    )
    plan.arm(sim, net, procs, clocks, leader_probe=lambda: 0)
    sim.run(until=20.0)
    # Crashing the leader would leave 1/3 alive; the guard skips it.
    assert not procs[0].crashed
    assert procs[1].crashed


def test_leader_crash_skipped_when_no_leader_known():
    sim, clocks, net, procs = build()
    plan = FaultSchedule(leader_crashes=[LeaderCrash(at=10.0)])
    plan.arm(sim, net, procs, clocks, leader_probe=lambda: None)
    sim.run(until=20.0)
    assert all(not p.crashed for p in procs)


def test_duplication_window_duplicates_only_inside_window():
    sim, clocks, net, procs = build()
    plan = FaultSchedule(
        duplications=[DuplicationWindow(start=0.0, end=50.0, prob=1.0)]
    )
    plan.arm(sim, net, procs, clocks)
    net.send(0, 1, Msg())
    sim.run(until=60.0)
    assert procs[1].count == 2
    net.send(0, 1, Msg())
    sim.run()
    assert procs[1].count == 3


def test_delay_burst_window_armed_through_schedule():
    sim, clocks, net, procs = build()
    plan = FaultSchedule(
        delay_bursts=[DelayBurstWindow(start=0.0, end=50.0, low=6.0, high=9.0)]
    )
    plan.arm(sim, net, procs, clocks)
    net.send(0, 1, Msg())
    sim.run(until=5.9)
    assert procs[1].count == 0  # the usual 1.0 delay got burst-stretched
    sim.run(until=9.1)
    assert procs[1].count == 1


def test_fault_count_sums_every_entry():
    plan = FaultSchedule(
        crashes=[Crash(pid=0, at=1.0)],
        recoveries=[Recover(pid=0, at=2.0)],
        losses=[LossWindow(start=0.0, end=1.0, prob=0.5)],
        desyncs=[ClockDesync(pid=1, start=1.0, jump=4.0)],
    )
    assert plan.fault_count() == 4
