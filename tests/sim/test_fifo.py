"""Tests for the network's FIFO-link mode."""

from dataclasses import dataclass

from repro.sim.clocks import ClockModel
from repro.sim.core import Simulator
from repro.sim.latency import UniformDelay
from repro.sim.network import Network
from repro.sim.process import Process


@dataclass(frozen=True)
class Seq:
    number: int


class Collector(Process):
    def __init__(self, *args):
        super().__init__(*args)
        self.numbers = []

    def on_message(self, src, msg):
        self.numbers.append(msg.number)


def build(fifo):
    sim = Simulator(seed=9)
    clocks = ClockModel(2, epsilon=0.0)
    net = Network(sim, delta=10.0, post_gst_delay=UniformDelay(1.0, 10.0),
                  fifo=fifo)
    procs = [Collector(pid, sim, net, clocks) for pid in range(2)]
    return sim, net, procs


def test_fifo_preserves_send_order():
    sim, net, procs = build(fifo=True)
    for i in range(200):
        net.send(0, 1, Seq(i))
        sim.run_for(0.05)
    sim.run()
    assert procs[1].numbers == list(range(200))


def test_non_fifo_can_reorder():
    sim, net, procs = build(fifo=False)
    for i in range(200):
        net.send(0, 1, Seq(i))
        sim.run_for(0.05)
    sim.run()
    assert sorted(procs[1].numbers) == list(range(200))
    assert procs[1].numbers != list(range(200))


def test_fifo_clamp_respects_delta_bound():
    sim, net, procs = build(fifo=True)
    send_times = {}
    for i in range(100):
        send_times[i] = sim.now
        net.send(0, 1, Seq(i))
        sim.run_for(0.2)
    sim.run()
    # With send gaps of 0.2 and delays up to 10, clamping happens often;
    # every delivery still respects its own delta bound because the
    # earlier message's deadline was earlier.
    assert len(procs[1].numbers) == 100


def test_fifo_is_per_directed_pair():
    sim, net, procs = build(fifo=True)
    # Interleave two directions; each direction is independently FIFO.
    for i in range(50):
        net.send(0, 1, Seq(i))
        net.send(1, 0, Seq(1000 + i))
        sim.run_for(0.05)
    sim.run()
    assert procs[1].numbers == list(range(50))
    assert procs[0].numbers == [1000 + i for i in range(50)]
