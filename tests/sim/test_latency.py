"""Tests for the delay models."""

import random

import pytest

from repro.sim.latency import FixedDelay, GeoDelay, SpikeDelay, UniformDelay


def test_fixed_delay():
    model = FixedDelay(3.0)
    rng = random.Random(0)
    assert model.sample(0, 1, rng) == 3.0
    assert model.maximum == 3.0


def test_fixed_rejects_negative():
    with pytest.raises(ValueError):
        FixedDelay(-1.0)


def test_uniform_delay_within_bounds():
    model = UniformDelay(1.0, 5.0)
    rng = random.Random(0)
    samples = [model.sample(0, 1, rng) for _ in range(200)]
    assert all(1.0 <= s <= 5.0 for s in samples)
    assert model.maximum == 5.0
    # Non-degenerate spread.
    assert max(samples) - min(samples) > 1.0


def test_uniform_rejects_bad_bounds():
    with pytest.raises(ValueError):
        UniformDelay(5.0, 1.0)
    with pytest.raises(ValueError):
        UniformDelay(-1.0, 1.0)


def test_spike_delay_bounds_and_spikes():
    model = SpikeDelay(1.0, 2.0, 50.0, spike_prob=0.5)
    rng = random.Random(1)
    samples = [model.sample(0, 1, rng) for _ in range(500)]
    assert all(1.0 <= s <= 50.0 for s in samples)
    assert any(s > 2.0 for s in samples)
    assert model.maximum == 50.0


def test_spike_rejects_bad_parameters():
    with pytest.raises(ValueError):
        SpikeDelay(2.0, 1.0, 50.0)
    with pytest.raises(ValueError):
        SpikeDelay(1.0, 2.0, 50.0, spike_prob=1.5)


def test_geo_delay_matrix():
    model = GeoDelay(
        assignment={0: 0, 1: 0, 2: 1},
        matrix=[[1.0, 40.0], [40.0, 1.0]],
    )
    rng = random.Random(0)
    assert model.sample(0, 1, rng) == 1.0  # same region
    assert model.sample(0, 2, rng) == 40.0  # cross region
    assert model.maximum == 40.0


def test_geo_delay_jitter():
    model = GeoDelay(
        assignment={0: 0, 1: 1},
        matrix=[[1.0, 10.0], [10.0, 1.0]],
        jitter=5.0,
    )
    rng = random.Random(0)
    samples = [model.sample(0, 1, rng) for _ in range(100)]
    assert all(10.0 <= s <= 15.0 for s in samples)
    assert model.maximum == 15.0


def test_geo_rejects_bad_config():
    with pytest.raises(ValueError):
        GeoDelay({0: 0}, [[1.0, 2.0]])  # not square
    with pytest.raises(ValueError):
        GeoDelay({0: 5}, [[1.0]])  # region out of range
    with pytest.raises(ValueError):
        GeoDelay({0: 0}, [[1.0]], jitter=-1.0)
