"""Timestamped mailboxes: batching, ordering, and conservative safety."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.core import SimulationError, Simulator
from repro.sim.mailbox import Inbox, Outbox, WireMessage


def msg(src="a", seq=0, sent_at=0.0, deliver_at=1.0, dst="b", payload=None):
    return WireMessage(src, seq, sent_at, deliver_at, dst, payload)


def test_outbox_drains_everything_once():
    outbox = Outbox()
    first, second = msg(seq=0), msg(seq=1)
    outbox.append(first)
    outbox.append(second)
    assert len(outbox) == 2
    assert outbox.drain() == [first, second]
    assert len(outbox) == 0
    assert outbox.drain() == []


def test_inbox_delivers_at_the_envelope_time():
    sim = Simulator()
    seen = []
    inbox = Inbox(sim, lambda payload: seen.append((sim.now, payload)))
    inbox.ingest([msg(deliver_at=3.0, payload="x"),
                  msg(seq=1, deliver_at=7.0, payload="y")])
    assert inbox.pending == 2
    sim.run()
    assert seen == [(3.0, "x"), (7.0, "y")]
    assert inbox.pending == 0


def test_inbox_delivery_beats_local_events_at_the_same_instant():
    # The single-simulator oracle scheduled this delivery from a sender
    # running strictly before T, so it sits ahead of local events at T;
    # the inbox must reproduce that order.
    sim = Simulator()
    order = []
    inbox = Inbox(sim, lambda payload: order.append(payload))
    sim.schedule_at(5.0, lambda: order.append("local"))
    inbox.ingest([msg(deliver_at=5.0, payload="wire")])
    sim.run()
    assert order == ["wire", "local"]


def test_same_instant_deliveries_fire_in_send_order():
    sim = Simulator()
    order = []
    inbox = Inbox(sim, lambda payload: order.append(payload))
    # Ingested out of order, across two ingest calls, one bucket.
    inbox.ingest([msg(src="a", seq=1, sent_at=2.0, deliver_at=5.0,
                      payload="second")])
    inbox.ingest([msg(src="a", seq=0, sent_at=1.0, deliver_at=5.0,
                      payload="first")])
    sim.run()
    assert order == ["first", "second"]


def test_ingest_rejects_an_envelope_from_the_past():
    sim = Simulator()
    inbox = Inbox(sim, lambda payload: None)
    sim.schedule_at(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError, match="conservative sync violated"):
        inbox.ingest([msg(deliver_at=9.0)])


@st.composite
def batches(draw):
    """Batches of envelopes as window ingests: (ingest_time, messages),
    every message timestamped at or after its ingest time."""
    out = []
    t = 0.0
    for batch_index in range(draw(st.integers(min_value=1, max_value=4))):
        t += draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
        n = draw(st.integers(min_value=0, max_value=5))
        messages = [
            msg(
                src=draw(st.sampled_from(["a", "b", "c"])),
                seq=i,
                sent_at=t,
                deliver_at=t + draw(st.floats(min_value=0.0, max_value=10.0,
                                              allow_nan=False)),
                payload=(batch_index, i),
            )
            for i in range(n)
        ]
        out.append((t, messages))
    return out


@given(batches())
@settings(max_examples=200, deadline=None, derandomize=True)
def test_no_delivery_ever_runs_in_the_past(plan):
    """The satellite property: however ingests interleave with local
    time, the handler never observes an envelope whose timestamp is
    behind the local clock — the conservative-sync guarantee a worker
    relies on."""
    sim = Simulator()
    delivered_at = {}

    def handler(payload):
        delivered_at[payload] = sim.now

    inbox = Inbox(sim, handler)
    deadline = {}
    ingested_at = {}
    for ingest_at, messages in plan:
        sim.run(until=ingest_at)
        inbox.ingest(messages)
        for message in messages:
            deadline[message.payload] = message.deliver_at
            ingested_at[message.payload] = sim.now
    sim.run()
    assert inbox.pending == 0
    assert set(delivered_at) == set(deadline)
    for payload, when in delivered_at.items():
        # Exactly on time, and never behind the clock that ingested it.
        assert when == deadline[payload]
        assert when >= ingested_at[payload]
