"""Tests for the partially synchronous network."""

from dataclasses import dataclass

import pytest

from repro.sim.clocks import ClockModel
from repro.sim.core import SimulationError, Simulator
from repro.sim.latency import FixedDelay, UniformDelay
from repro.sim.network import Network
from repro.sim.process import Process


@dataclass(frozen=True)
class Ping:
    payload: int = 0

    category = "test"


@dataclass(frozen=True)
class Pong:
    payload: int = 0


class Recorder(Process):
    """Records (src, msg, time) for every delivery."""

    def __init__(self, *args):
        super().__init__(*args)
        self.received = []

    def on_message(self, src, msg):
        self.received.append((src, msg, self.sim.now))


def build(n=3, **net_kwargs):
    sim = Simulator(seed=1)
    clocks = ClockModel(n, epsilon=0.0)
    net = Network(sim, **net_kwargs)
    procs = [Recorder(pid, sim, net, clocks) for pid in range(n)]
    return sim, net, procs


def test_delivery_within_delta():
    sim, net, procs = build(delta=10.0, post_gst_delay=FixedDelay(4.0))
    net.send(0, 1, Ping(7))
    sim.run()
    assert procs[1].received == [(0, Ping(7), 4.0)]


def test_post_gst_delay_bounded_by_delta():
    sim, net, procs = build(delta=10.0)
    for i in range(100):
        net.send(0, 1, Ping(i))
    sim.run()
    assert len(procs[1].received) == 100
    assert all(t <= 10.0 for (_, _, t) in procs[1].received)


def test_post_gst_model_exceeding_delta_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Network(sim, delta=5.0, post_gst_delay=UniformDelay(0.0, 6.0))


def test_self_send_rejected():
    sim, net, procs = build(delta=10.0)
    with pytest.raises(SimulationError):
        net.send(0, 0, Ping())


def test_unknown_destination_rejected():
    sim, net, procs = build(delta=10.0)
    with pytest.raises(SimulationError):
        net.send(0, 99, Ping())


def test_broadcast_excludes_sender():
    sim, net, procs = build(n=4, delta=10.0)
    net.broadcast(1, Ping())
    sim.run()
    assert procs[1].received == []
    for pid in (0, 2, 3):
        assert len(procs[pid].received) == 1


def test_pre_gst_messages_can_be_lost():
    sim, net, procs = build(delta=10.0, gst=1000.0, pre_gst_drop_prob=1.0)
    net.send(0, 1, Ping())
    sim.run()
    assert procs[1].received == []
    assert net.messages_dropped["Ping"] == 1


def test_pre_gst_message_arrives_by_gst_plus_delta():
    sim, net, procs = build(
        delta=10.0, gst=100.0,
        pre_gst_delay=UniformDelay(0.0, 10_000.0),
    )
    for i in range(50):
        net.send(0, 1, Ping(i))
    sim.run()
    assert len(procs[1].received) == 50
    assert all(t <= 110.0 for (_, _, t) in procs[1].received)


def test_post_gst_no_loss():
    sim, net, procs = build(delta=10.0, gst=0.0, pre_gst_drop_prob=1.0)
    net.send(0, 1, Ping())
    sim.run()
    assert len(procs[1].received) == 1


def test_partition_blocks_messages():
    sim, net, procs = build(n=4, delta=10.0)
    net.add_partition(frozenset({0, 1}), frozenset({2, 3}), start=0.0)
    net.send(0, 2, Ping())
    net.send(0, 1, Ping())
    sim.run()
    assert procs[2].received == []
    assert len(procs[1].received) == 1


def test_partition_window_ends():
    sim, net, procs = build(delta=10.0)
    net.add_partition(frozenset({0}), frozenset({1, 2}), start=0.0, end=50.0)
    net.send(0, 1, Ping(1))
    sim.run_for(60.0)
    net.send(0, 1, Ping(2))
    sim.run()
    payloads = [m.payload for (_, m, _) in procs[1].received]
    assert payloads == [2]


def test_partition_cuts_in_flight_messages():
    sim, net, procs = build(delta=10.0, post_gst_delay=FixedDelay(10.0))
    net.send(0, 1, Ping())
    net.add_partition(frozenset({0}), frozenset({1}), start=0.0)
    sim.run()
    assert procs[1].received == []


def test_isolate_and_heal():
    sim, net, procs = build(n=3, delta=10.0)
    net.isolate(2, start=0.0)
    net.send(0, 2, Ping(1))
    sim.run()
    assert procs[2].received == []
    net.heal_all()
    net.send(0, 2, Ping(2))
    sim.run()
    assert [m.payload for (_, m, _) in procs[2].received] == [2]


def test_crashed_process_receives_nothing():
    sim, net, procs = build(delta=10.0)
    procs[1].crash()
    net.send(0, 1, Ping())
    sim.run()
    assert procs[1].received == []


def test_message_counters():
    sim, net, procs = build(delta=10.0)
    net.send(0, 1, Ping())
    net.send(0, 1, Pong())
    sim.run()
    assert net.messages_sent == {"Ping": 1, "Pong": 1}
    assert net.total_sent() == 2
    assert net.sent_by_category() == {"test": 1, "other": 1}
    net.reset_counters()
    assert net.total_sent() == 0


def test_custom_drop_rule():
    sim, net, procs = build(delta=10.0)
    net.drop_rule = lambda src, dst, msg, now: isinstance(msg, Ping)
    net.send(0, 1, Ping())
    net.send(0, 1, Pong())
    sim.run()
    assert [type(m).__name__ for (_, m, _) in procs[1].received] == ["Pong"]


def test_trace_records_messages():
    sim, net, procs = build(delta=10.0, trace=True,
                            post_gst_delay=FixedDelay(2.0))
    net.send(0, 1, Ping(5))
    sim.run()
    assert len(net.trace) == 1
    record = net.trace[0]
    assert (record.src, record.dst) == (0, 1)
    assert record.deliver_at == 2.0


def test_duplicate_registration_rejected():
    sim, net, procs = build(delta=10.0)
    with pytest.raises(SimulationError):
        net.register(procs[0])


def test_no_duplication_without_rule():
    sim, net, procs = build(delta=10.0)
    for i in range(20):
        net.send(0, 1, Ping(i))
    sim.run()
    assert len(procs[1].received) == 20
    assert net.messages_duplicated == {}


def test_duplication_preserves_fifo_pair_order():
    sim, net, procs = build(delta=10.0)  # UniformDelay default: delays vary
    net.dup_rule = lambda src, dst, msg, now: True
    for i in range(25):
        net.send(0, 1, Ping(i))
    sim.run()
    payloads = [m.payload for (_, m, _) in procs[1].received]
    # Every message delivered twice, and on a FIFO link a duplicate never
    # overtakes the original nor any earlier message on the pair.
    assert payloads == sorted(payloads)
    assert len(payloads) == 50
    assert net.messages_duplicated["Ping"] == 25


def test_duplicates_respect_delta():
    sim, net, procs = build(delta=10.0)
    net.dup_rule = lambda src, dst, msg, now: True
    net.send(0, 1, Ping())
    sim.run()
    assert len(procs[1].received) == 2
    assert all(t <= 10.0 for (_, _, t) in procs[1].received)


def test_one_way_partition_blocks_single_direction():
    sim, net, procs = build(delta=10.0)
    net.add_one_way_partition(frozenset({0}), frozenset({1}), start=0.0)
    net.send(0, 1, Ping(1))  # blocked direction
    net.send(1, 0, Ping(2))  # reverse still works
    sim.run()
    assert procs[1].received == []
    assert [m.payload for (_, m, _) in procs[0].received] == [2]


def test_delay_burst_window_slows_messages():
    sim, net, procs = build(
        delta=10.0, post_gst_delay=FixedDelay(1.0),
    )
    net.add_delay_burst(start=0.0, end=100.0, low=5.0, high=8.0)
    net.send(0, 1, Ping(1))
    sim.run_for(200.0)
    net.send(0, 1, Ping(2))  # after the window: back to the base model
    sim.run()
    times = {m.payload: t for (_, m, t) in procs[1].received}
    assert 5.0 <= times[1] <= 8.0
    assert times[2] == 201.0


def test_delay_burst_clamped_to_delta_post_gst():
    sim, net, procs = build(delta=10.0)
    net.add_delay_burst(start=0.0, end=1000.0, low=5.0, high=500.0)
    for i in range(100):
        net.send(0, 1, Ping(i))
    sim.run()
    assert len(procs[1].received) == 100
    assert all(t <= 10.0 for (_, _, t) in procs[1].received)


def test_expired_partitions_are_pruned():
    sim, net, procs = build(delta=10.0)
    net.add_partition(frozenset({0}), frozenset({1}), start=0.0, end=50.0)
    net.add_partition(frozenset({0}), frozenset({2}), start=0.0, end=500.0)
    assert len(net.partitions) == 2
    sim.run_for(60.0)
    net.send(0, 1, Ping())  # first send past an expiry prunes the list
    assert len(net.partitions) == 1
    assert net.partitions[0].end == 500.0


def test_heal_all_drops_partitions_outright():
    sim, net, procs = build(delta=10.0)
    net.add_partition(frozenset({0}), frozenset({1}), start=0.0)
    net.add_partition(frozenset({1}), frozenset({2}), start=0.0, end=90.0)
    net.heal_all()
    assert net.partitions == []
    net.send(0, 1, Ping())
    sim.run()
    assert len(procs[1].received) == 1


def test_overlapping_partition_groups_rejected():
    sim, net, procs = build(delta=10.0)
    with pytest.raises(ValueError):
        net.add_partition(frozenset({0, 1}), frozenset({1, 2}), start=0.0)


def test_delay_burst_validates_window():
    with pytest.raises(ValueError):
        Network(Simulator(), delta=10.0).add_delay_burst(
            start=10.0, end=5.0, low=1.0, high=2.0
        )
    with pytest.raises(ValueError):
        Network(Simulator(), delta=10.0).add_delay_burst(
            start=0.0, end=5.0, low=3.0, high=2.0
        )
