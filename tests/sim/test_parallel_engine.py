"""The conservative window engine, exercised over toy partitions.

Two ping-ping partitions (each ticks periodically and mails the other)
are enough to pin the engine's contract: inclusive ``run_to`` semantics,
process/in-process equivalence, worker-failure surfacing, and the
window accounting the benchmarks report.
"""

import pytest

from repro.sim.core import Simulator
from repro.sim.mailbox import Inbox, Outbox, WireMessage
from repro.sim.parallel import ParallelSim, ParallelSimError

LATENCY = 2.0


class _Node:
    """A partition that ticks every time unit and mails its peer."""

    def __init__(self, site, peer, seed=0, crash_at=None):
        self.sim = Simulator(seed=seed)
        self.site = site
        self.peer = peer
        self.outbox = Outbox()
        self.inbox = Inbox(self.sim, self._on_message)
        self.received = []
        self._seq = 0
        self.sim.schedule_at(1.0, self._tick)
        if crash_at is not None:
            self.sim.schedule_at(
                crash_at, self._boom, f"scripted fault at t={crash_at}"
            )

    def _tick(self):
        now = self.sim.now
        self.outbox.append(WireMessage(
            self.site, self._seq, now, now + LATENCY, self.peer,
            (self.site, now),
        ))
        self._seq += 1
        self.sim.schedule_at(now + 1.0, self._tick)

    def _boom(self, message):
        raise RuntimeError(message)

    def _on_message(self, payload):
        self.received.append((self.sim.now, payload))

    def query(self, name, *args):
        if name == "received":
            return list(self.received)
        if name == "now":
            return self.sim.now
        if name == "boom":
            raise RuntimeError("query exploded on purpose")
        raise ValueError(name)

    def finish(self):
        return {"received": len(self.received), "now": self.sim.now}


def _engine(use_processes, crash_at=None, peer_of_a="b"):
    control_sim = Simulator()
    control_received = []
    control_inbox = Inbox(
        control_sim, lambda payload: control_received.append(payload)
    )
    engine = ParallelSim(
        control_sim,
        control_inbox,
        Outbox(),
        lookahead=LATENCY,
        builders={
            "a": lambda: _Node("a", peer_of_a, crash_at=crash_at),
            "b": lambda: _Node("b", "a"),
        },
        use_processes=use_processes,
    )
    return engine, control_received


def test_positive_lookahead_required():
    sim = Simulator()
    with pytest.raises(ValueError, match="positive lookahead"):
        ParallelSim(sim, Inbox(sim, lambda p: None), Outbox(),
                    lookahead=0.0, builders={})


@pytest.mark.parametrize("use_processes", [False, True])
def test_run_to_is_inclusive_and_delivers_on_time(use_processes):
    engine, _ = _engine(use_processes)
    try:
        engine.start()
        engine.run_to(10.0)
        assert engine.now == 10.0
        assert engine.windows > 0
        for site in ("a", "b"):
            received = engine.query(site, "received")
            # Pings sent at 1..10 arrive at 3..12; by t=10 exactly the
            # first eight landed — including the deliver_at == 10 one,
            # which the boundary pass must not strand.
            assert [when for when, _ in received] == [
                float(t) for t in range(3, 11)
            ]
            assert engine.query(site, "now") == 10.0
    finally:
        engine.close()


def test_process_and_in_process_modes_agree():
    results = {}
    for mode in (False, True):
        engine, _ = _engine(mode)
        try:
            engine.start()
            engine.run_to(7.0)
            results[mode] = engine.query_all("received")
        finally:
            engine.close()
    assert results[False] == results[True]


def test_messages_to_unknown_sites_route_to_the_control_inbox():
    engine, control_received = _engine(False, peer_of_a="ctl")
    try:
        engine.start()
        ok = engine.run_until(lambda: len(control_received) >= 3,
                              timeout=100.0)
        assert ok
        assert control_received[:3] == [("a", 1.0), ("a", 2.0), ("a", 3.0)]
        assert engine.now < 100.0  # stopped at the predicate, not timeout
    finally:
        engine.close()


def test_worker_exception_surfaces_with_the_remote_traceback():
    engine, _ = _engine(True, crash_at=5.0)
    try:
        engine.start()
        with pytest.raises(ParallelSimError) as excinfo:
            engine.run_to(10.0)
        assert excinfo.value.site == "a"
        assert "scripted fault at t=5.0" in excinfo.value.remote_traceback
        assert "_boom" in excinfo.value.remote_traceback
    finally:
        engine.close()


def test_query_exception_surfaces_and_tears_down():
    engine, _ = _engine(True)
    try:
        engine.start()
        engine.run_to(3.0)
        with pytest.raises(ParallelSimError, match="exploded on purpose"):
            engine.query("a", "boom")
    finally:
        engine.close()


@pytest.mark.parametrize("use_processes", [False, True])
def test_finish_collects_reports_and_shuts_down(use_processes):
    engine, _ = _engine(use_processes)
    engine.start()
    engine.run_to(6.0)
    reports = engine.finish()
    assert set(reports) == {"a", "b"}
    for report in reports.values():
        assert report == {"received": 4, "now": 6.0}
