"""The adaptive window engine, exercised over toy partitions.

Two ping-ping partitions (each ticks periodically and mails the other)
are enough to pin the engine's contract: inclusive ``run_to`` semantics,
process/in-process equivalence, worker-failure surfacing, and the
window accounting the benchmarks report.  On top of that, the adaptive
earliest-output-time rule gets its own pins: a quiet partition collapses
a long horizon into a constant number of windows, and a hypothesis
property drives random send/latency schedules through the engine
asserting every envelope lands exactly on its timestamp — the inbox
raises on any delivery into the receiver's past, so a too-wide grant
cannot pass silently.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.core import Simulator
from repro.sim.mailbox import Inbox, Outbox, WireMessage
from repro.sim.parallel import ParallelSim, ParallelSimError

LATENCY = 2.0


class _Node:
    """A partition that ticks every time unit and mails its peer."""

    def __init__(self, site, peer, seed=0, crash_at=None):
        self.sim = Simulator(seed=seed)
        self.site = site
        self.peer = peer
        self.outbox = Outbox()
        self.inbox = Inbox(self.sim, self._on_message)
        self.received = []
        self._seq = 0
        self.sim.schedule_at(1.0, self._tick)
        if crash_at is not None:
            self.sim.schedule_at(
                crash_at, self._boom, f"scripted fault at t={crash_at}"
            )

    def _tick(self):
        now = self.sim.now
        self.outbox.append(WireMessage(
            self.site, self._seq, now, now + LATENCY, self.peer,
            (self.site, now),
        ))
        self._seq += 1
        self.sim.schedule_at(now + 1.0, self._tick)

    def _boom(self, message):
        raise RuntimeError(message)

    def _on_message(self, payload):
        self.received.append((self.sim.now, payload))

    def query(self, name, *args):
        if name == "received":
            return list(self.received)
        if name == "now":
            return self.sim.now
        if name == "boom":
            raise RuntimeError("query exploded on purpose")
        raise ValueError(name)

    def finish(self):
        return {"received": len(self.received), "now": self.sim.now}


def _engine(use_processes, crash_at=None, peer_of_a="b"):
    control_sim = Simulator()
    control_received = []
    control_inbox = Inbox(
        control_sim, lambda payload: control_received.append(payload)
    )
    engine = ParallelSim(
        control_sim,
        control_inbox,
        Outbox(),
        lookahead=LATENCY,
        builders={
            "a": lambda: _Node("a", peer_of_a, crash_at=crash_at),
            "b": lambda: _Node("b", "a"),
        },
        use_processes=use_processes,
    )
    return engine, control_received


def test_positive_lookahead_required():
    sim = Simulator()
    with pytest.raises(ValueError, match="positive lookahead"):
        ParallelSim(sim, Inbox(sim, lambda p: None), Outbox(),
                    lookahead=0.0, builders={})


@pytest.mark.parametrize("use_processes", [False, True])
def test_run_to_is_inclusive_and_delivers_on_time(use_processes):
    engine, _ = _engine(use_processes)
    try:
        engine.start()
        engine.run_to(10.0)
        assert engine.now == 10.0
        assert engine.windows > 0
        for site in ("a", "b"):
            received = engine.query(site, "received")
            # Pings sent at 1..10 arrive at 3..12; by t=10 exactly the
            # first eight landed — including the deliver_at == 10 one,
            # which the boundary pass must not strand.
            assert [when for when, _ in received] == [
                float(t) for t in range(3, 11)
            ]
            assert engine.query(site, "now") == 10.0
    finally:
        engine.close()


def test_process_and_in_process_modes_agree():
    results = {}
    for mode in (False, True):
        engine, _ = _engine(mode)
        try:
            engine.start()
            engine.run_to(7.0)
            results[mode] = engine.query_all("received")
        finally:
            engine.close()
    assert results[False] == results[True]


def test_messages_to_unknown_sites_route_to_the_control_inbox():
    engine, control_received = _engine(False, peer_of_a="ctl")
    try:
        engine.start()
        ok = engine.run_until(lambda: len(control_received) >= 3,
                              timeout=100.0)
        assert ok
        assert control_received[:3] == [("a", 1.0), ("a", 2.0), ("a", 3.0)]
        assert engine.now < 100.0  # stopped at the predicate, not timeout
    finally:
        engine.close()


def test_worker_exception_surfaces_with_the_remote_traceback():
    engine, _ = _engine(True, crash_at=5.0)
    try:
        engine.start()
        with pytest.raises(ParallelSimError) as excinfo:
            engine.run_to(10.0)
        assert excinfo.value.site == "a"
        assert "scripted fault at t=5.0" in excinfo.value.remote_traceback
        assert "_boom" in excinfo.value.remote_traceback
    finally:
        engine.close()


def test_query_exception_surfaces_and_tears_down():
    engine, _ = _engine(True)
    try:
        engine.start()
        engine.run_to(3.0)
        with pytest.raises(ParallelSimError, match="exploded on purpose"):
            engine.query("a", "boom")
    finally:
        engine.close()


@pytest.mark.parametrize("use_processes", [False, True])
def test_finish_collects_reports_and_shuts_down(use_processes):
    engine, _ = _engine(use_processes)
    engine.start()
    engine.run_to(6.0)
    reports = engine.finish()
    assert set(reports) == {"a", "b"}
    for report in reports.values():
        assert report == {"received": 4, "now": 6.0}


def test_sync_telemetry_surfaces():
    engine, _ = _engine(True)
    try:
        engine.start()
        engine.run_to(8.0)
        assert set(engine.site_windows) == {"a", "b"}
        assert engine.windows == max(engine.site_windows.values())
        assert engine.window_commands == sum(engine.site_windows.values())
        assert engine.envelope_bytes > 0
        assert set(engine.worker_stall) == {"a", "b"}
        assert all(s >= 0.0 for s in engine.worker_stall.values())
        assert engine.barrier_stall == max(engine.worker_stall.values())
    finally:
        engine.close()


# ----------------------------------------------------------------------
# Adaptive window pins
# ----------------------------------------------------------------------

class _QuietNode:
    """Busy event heap, zero cross-traffic, and it can prove it.

    Ticks every 0.1 time units forever but never mails anyone; its
    ``eot`` promise is +inf, the toy analogue of a sharded group with no
    port request in flight.  Without the promise the generic bound
    (next event + lookahead) would force a window per ~lookahead.
    """

    def __init__(self, site):
        self.sim = Simulator()
        self.site = site
        self.outbox = Outbox()
        self.inbox = Inbox(self.sim, lambda payload: None)
        self.ticks = 0
        self.sim.schedule_at(0.1, self._tick)

    def _tick(self):
        self.ticks += 1
        self.sim.schedule_at(self.sim.now + 0.1, self._tick)

    def eot(self):
        return float("inf")

    def query(self, name, *args):
        if name == "ticks":
            return self.ticks
        raise ValueError(name)

    def finish(self):
        return self.ticks


def test_zero_cross_traffic_uses_constant_windows():
    control_sim = Simulator()
    engine = ParallelSim(
        control_sim,
        Inbox(control_sim, lambda p: None),
        Outbox(),
        lookahead=LATENCY,
        builders={
            "a": lambda: _QuietNode("a"),
            "b": lambda: _QuietNode("b"),
        },
        use_processes=False,
    )
    try:
        engine.start()
        engine.run_to(1000.0)
        # The fixed-lookahead engine needed horizon / lookahead = 500
        # windows for this; the quiescence promise collapses it to one
        # exclusive grant plus the boundary pass.
        assert engine.windows <= 3, engine.site_windows
        # ~10k ticks (one per 0.1 up to 1000, modulo float accumulation)
        assert engine.query("a", "ticks") >= 9_999
    finally:
        engine.close()


class _ScriptNode:
    """Replays a fixed send script: (send_at, latency, dst) triples."""

    def __init__(self, site, script):
        self.sim = Simulator()
        self.site = site
        self.outbox = Outbox()
        self.inbox = Inbox(self.sim, self._on_message)
        self.received = []
        self._seq = 0
        for send_at, latency, dst in script:
            self.sim.schedule_at(send_at, self._send, latency, dst)

    def _send(self, latency, dst):
        now = self.sim.now
        self.outbox.append(WireMessage(
            self.site, self._seq, now, now + latency, dst,
            (self.site, self._seq),
        ))
        self._seq += 1

    def _on_message(self, payload):
        self.received.append((self.sim.now, payload))

    def query(self, name, *args):
        if name == "received":
            return list(self.received)
        raise ValueError(name)

    def finish(self):
        return list(self.received)


# Times on a 0.25 grid (exact in binary floating point) so expected and
# actual delivery instants compare with ==; latencies at or above the
# engine lookahead, as the SimPartition contract requires.
_GRID = st.integers(min_value=0, max_value=200).map(lambda q: q * 0.25)
_LAT = st.integers(min_value=8, max_value=40).map(lambda q: q * 0.25)
_SITES = ("a", "b", "c")


@st.composite
def _schedules(draw):
    return {
        site: draw(st.lists(
            st.tuples(
                _GRID,
                _LAT,
                st.sampled_from([s for s in _SITES if s != site]),
            ),
            max_size=12,
        ))
        for site in _SITES
    }


@settings(max_examples=60, deadline=None)
@given(schedule=_schedules())
def test_no_envelope_is_ever_ingested_in_a_receivers_past(schedule):
    """Random event/latency schedules under EOT-widened windows.

    ``Inbox.ingest`` raises on any delivery below the local clock, so
    simply *completing* the run proves no adaptive grant ever outran a
    sender.  The equality check on arrival timestamps additionally pins
    that widened windows lose, duplicate, and reorder nothing.
    """
    control_sim = Simulator()
    engine = ParallelSim(
        control_sim,
        Inbox(control_sim, lambda p: None),
        Outbox(),
        lookahead=LATENCY,
        builders={
            site: (lambda s=site: _ScriptNode(s, schedule[s]))
            for site in _SITES
        },
        use_processes=False,
    )
    try:
        engine.start()
        engine.run_to(120.0)
        expected = {site: [] for site in _SITES}
        for src, sends in schedule.items():
            # The node numbers envelopes in *fire* order, so sort the
            # script by send time first (stable, so simultaneous sends
            # keep schedule order) before assigning expected seqs.
            fire_order = sorted(sends, key=lambda send: send[0])
            for seq, (send_at, latency, dst) in enumerate(fire_order):
                expected[dst].append(
                    (send_at + latency, send_at, src, seq, (src, seq))
                )
        for site in _SITES:
            got = engine.query(site, "received")
            want = [
                (when, payload)
                for when, _, _, _, payload in sorted(expected[site])
            ]
            assert got == want
    finally:
        engine.close()
