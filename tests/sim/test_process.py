"""Tests for the process abstraction: timers, tasks, crash/recovery."""

from dataclasses import dataclass

import pytest

from repro.sim.clocks import ClockModel
from repro.sim.core import Simulator
from repro.sim.latency import FixedDelay
from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.tasks import Future, Sleep, TaskCancelled, Until


@dataclass(frozen=True)
class Note:
    text: str


class Host(Process):
    def __init__(self, *args):
        super().__init__(*args)
        self.notes = []

    def on_message(self, src, msg):
        self.notes.append(msg.text)


def build(n=2, epsilon=0.0, offsets=None):
    sim = Simulator(seed=1)
    clocks = ClockModel(n, epsilon=epsilon, offsets=offsets)
    net = Network(sim, delta=10.0, post_gst_delay=FixedDelay(1.0))
    procs = [Host(pid, sim, net, clocks) for pid in range(n)]
    return sim, net, procs


class TestTimers:
    def test_timer_fires_after_local_delay(self):
        sim, net, (a, b) = build()
        fired = []
        a.set_timer(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_timer_respects_clock_offset(self):
        sim, net, procs = build(n=2, epsilon=4.0, offsets=[2.0, -2.0])
        fired = []
        # Local clock of process 0 is 2 ahead: local delay 5 happens at
        # real time 5 regardless of offset (rate is 1).
        procs[0].set_timer(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [pytest.approx(5.0)]

    def test_every_repeats_until_crash(self):
        sim, net, (a, b) = build()
        ticks = []
        a.every(2.0, lambda: ticks.append(sim.now))
        sim.run(until=7.0)
        assert ticks == [2.0, 4.0, 6.0]
        a.crash()
        sim.run(until=20.0)
        assert ticks == [2.0, 4.0, 6.0]

    def test_crash_cancels_timers(self):
        sim, net, (a, b) = build()
        fired = []
        a.set_timer(5.0, lambda: fired.append(1))
        a.crash()
        sim.run()
        assert fired == []


class TestTasks:
    def test_sleep(self):
        sim, net, (a, b) = build()
        log = []

        def task():
            log.append(("start", sim.now))
            yield Sleep(3.0)
            log.append(("end", sim.now))

        a.spawn(task())
        sim.run()
        assert log == [("start", 0.0), ("end", 3.0)]

    def test_until_already_true_resumes_immediately(self):
        sim, net, (a, b) = build()
        log = []

        def task():
            yield Until(lambda: True)
            log.append(sim.now)

        a.spawn(task())
        assert log == [0.0]

    def test_until_wakes_on_message(self):
        sim, net, (a, b) = build()
        log = []

        def task():
            yield Until(lambda: bool(a.notes))
            log.append((a.notes[0], sim.now))

        a.spawn(task())
        sim.run_for(5.0)
        assert log == []
        net.send(1, 0, Note("hi"))
        sim.run()
        assert log == [("hi", 6.0)]

    def test_future_resume(self):
        sim, net, (a, b) = build()
        future = Future()
        log = []

        def task():
            value = yield future
            log.append(value)

        a.spawn(task())
        sim.run_for(1.0)
        assert log == []
        future.resolve(42)
        assert log == [42]

    def test_future_already_done(self):
        sim, net, (a, b) = build()
        future = Future()
        future.resolve("x")
        log = []

        def task():
            value = yield future
            log.append(value)

        a.spawn(task())
        assert log == ["x"]

    def test_future_double_resolve_rejected(self):
        future = Future()
        future.resolve(1)
        with pytest.raises(RuntimeError):
            future.resolve(2)

    def test_task_result(self):
        sim, net, (a, b) = build()

        def task():
            yield Sleep(1.0)
            return "done"

        handle = a.spawn(task())
        sim.run()
        assert handle.finished
        assert handle.result == "done"

    def test_yield_from_subprotocol(self):
        sim, net, (a, b) = build()
        log = []

        def sub():
            yield Sleep(2.0)
            return 10

        def task():
            value = yield from sub()
            log.append((value, sim.now))

        a.spawn(task())
        sim.run()
        assert log == [(10, 2.0)]

    def test_task_chain_wakes_dependent_task(self):
        sim, net, (a, b) = build()
        state = {"x": 0}
        log = []

        def setter():
            yield Sleep(1.0)
            state["x"] = 1

        def waiter():
            yield Until(lambda: state["x"] == 1)
            log.append(sim.now)

        a.spawn(waiter())
        a.spawn(setter())
        sim.run()
        assert log == [1.0]

    def test_crash_cancels_tasks(self):
        sim, net, (a, b) = build()
        log = []

        def task():
            try:
                yield Sleep(100.0)
                log.append("finished")
            except TaskCancelled:
                log.append("cancelled")
                raise

        a.spawn(task())
        a.crash()
        sim.run()
        assert log == ["cancelled"]

    def test_unsupported_yield_raises(self):
        sim, net, (a, b) = build()

        def task():
            yield 42

        with pytest.raises(TypeError):
            a.spawn(task())


class TestCrashRecovery:
    def test_crashed_flag_and_repr(self):
        sim, net, (a, b) = build()
        assert "up" in repr(a)
        a.crash()
        assert a.crashed
        assert "crashed" in repr(a)

    def test_send_after_crash_is_noop(self):
        sim, net, (a, b) = build()
        a.crash()
        a.send(1, Note("x"))
        sim.run()
        assert b.notes == []

    def test_stable_storage_survives_crash(self):
        sim, net, (a, b) = build()
        a.stable["key"] = 7
        a.crash()
        a.recover()
        assert a.stable["key"] == 7

    def test_recover_is_noop_when_up(self):
        sim, net, (a, b) = build()
        a.recover()
        assert not a.crashed

    def test_double_crash_is_noop(self):
        sim, net, (a, b) = build()
        a.crash()
        a.crash()
        assert a.crashed
