"""Tests for run statistics and summaries."""

import pytest

from repro.sim.trace import RunStats, percentile, summarize


class TestRunStats:
    def test_invoke_respond_roundtrip(self):
        stats = RunStats()
        stats.invoke((0, 1), 0, "read", "op", now=1.0)
        record = stats.respond((0, 1), "value", now=3.5)
        assert record.latency == 2.5
        assert record.response == "value"
        assert record.completed

    def test_duplicate_invoke_rejected(self):
        stats = RunStats()
        stats.invoke((0, 1), 0, "read", "op", 0.0)
        with pytest.raises(ValueError):
            stats.invoke((0, 1), 0, "read", "op", 1.0)

    def test_double_respond_rejected(self):
        stats = RunStats()
        stats.invoke((0, 1), 0, "read", "op", 0.0)
        stats.respond((0, 1), "v", 1.0)
        with pytest.raises(ValueError):
            stats.respond((0, 1), "v", 2.0)

    def test_pending_and_completed(self):
        stats = RunStats()
        stats.invoke((0, 1), 0, "read", "op", 0.0)
        stats.invoke((0, 2), 0, "rmw", "op", 0.0)
        stats.respond((0, 1), "v", 1.0)
        assert len(stats.completed()) == 1
        assert len(stats.pending()) == 1
        assert len(stats.completed("read")) == 1
        assert len(stats.completed("rmw")) == 0

    def test_blocking_accounting(self):
        stats = RunStats()
        stats.invoke((0, 1), 0, "read", "op", 0.0)
        stats.invoke((0, 2), 0, "read", "op", 0.0)
        stats.mark_blocked((0, 1), 4.0)
        stats.respond((0, 1), "v", 5.0)
        stats.respond((0, 2), "v", 1.0)
        assert stats.blocked_fraction("read") == 0.5
        assert stats.max_blocking("read") == 4.0
        assert stats.get((0, 1)).blocked
        assert not stats.get((0, 2)).blocked

    def test_blocked_fraction_by_pid(self):
        stats = RunStats()
        stats.invoke((0, 1), 0, "read", "op", 0.0)
        stats.invoke((1, 1), 1, "read", "op", 0.0)
        stats.mark_blocked((1, 1), 1.0)
        stats.respond((0, 1), "v", 1.0)
        stats.respond((1, 1), "v", 1.0)
        assert stats.blocked_fraction("read", pid=0) == 0.0
        assert stats.blocked_fraction("read", pid=1) == 1.0

    def test_blocked_fraction_empty(self):
        assert RunStats().blocked_fraction("read") == 0.0

    def test_latencies(self):
        stats = RunStats()
        stats.invoke((0, 1), 0, "rmw", "op", 0.0)
        stats.respond((0, 1), None, 7.0)
        assert stats.latencies("rmw") == [7.0]
        assert stats.latencies("read") == []


class TestPercentile:
    def test_single_value(self):
        assert percentile([5.0], 99) == 5.0

    def test_median_of_two(self):
        assert percentile([1.0, 3.0], 50) == 2.0

    def test_extremes(self):
        data = [float(i) for i in range(1, 101)]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 100.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == 2.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_unsorted_input(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0


class TestSummarize:
    def test_basic(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.p50 == 2.5
        assert summary.max == 4.0

    def test_empty(self):
        summary = summarize([])
        assert summary.count == 0
        assert summary.max == 0.0

    def test_row_renders_strings(self):
        row = summarize([1.0]).row()
        assert row[0] == "1"
        assert all(isinstance(cell, str) for cell in row)
