"""Integration tests: the shipped examples run end-to-end.

Each example is executed in a subprocess exactly as a user would run it.
The slowest two (the 3-second read-heavy workload and the geo sweep) are
exercised via import + reduced calls elsewhere; the three fast ones run
whole.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 300.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stdout}\n{result.stderr}"
    )
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "leader elected" in out
    assert "linearizable: True" in out


def test_distributed_lock():
    out = run_example("distributed_lock.py")
    assert "won the lock" in out
    assert "lock history linearizable: True" in out


def test_durable_restart():
    out = run_example("durable_restart.py")
    assert "restarted from its WAL" in out
    assert "all 3 keys read back after the power cycle" in out
    assert "post-recovery write and read OK" in out


def test_fault_injection_tour():
    out = run_example("fault_injection_tour.py")
    assert "total money: 252" in out
    assert "linearizable: True" in out
    assert "chaos nemesis" in out
    assert "schedule 2" in out


def test_sharded_kv():
    out = run_example("sharded_kv.py")
    assert "crashed mid-handoff" in out
    assert "handoff completed anyway" in out
    assert "all 12 keys read back correctly" in out
    assert "routed history linearizable: True" in out
    assert "shard.handoff span(s) recorded" in out


def test_net_kv():
    out = run_example("net_kv.py", timeout=120.0)
    assert "server processes ready" in out
    assert "put/get round-trip over real sockets OK" in out
    assert "reads prefer the leaseholder" in out
    assert "SIGKILLed replica 0 after 5 acks" in out
    assert "exactly-once verified: counter == acks == 10" in out


@pytest.mark.slow
def test_read_heavy_cache():
    out = run_example("read_heavy_cache.py", timeout=600.0)
    assert "the same workload" in out


@pytest.mark.slow
def test_geo_replication():
    out = run_example("geo_replication.py", timeout=900.0)
    assert "virginia" in out
