"""Meta-tests: repository-wide conventions.

These keep the codebase honest as it grows: every protocol message
declares its accounting category, every public module is documented, and
the experiment scripts stay registered in the pytest suite.
"""

import importlib
import inspect
import pkgutil
from pathlib import Path

import repro

VALID_CATEGORIES = {"consensus", "lease", "client", "leader-election"}


def _all_modules():
    prefix = repro.__name__ + "."
    for info in pkgutil.walk_packages(repro.__path__, prefix):
        yield importlib.import_module(info.name)


def test_every_module_has_a_docstring():
    undocumented = [
        module.__name__ for module in _all_modules()
        if not (module.__doc__ or "").strip()
    ]
    assert not undocumented, undocumented


def test_every_message_class_declares_a_category():
    missing = []
    message_modules = [
        "repro.core.messages",
        "repro.leader.omega",
        "repro.leader.enhanced",
        "repro.baselines.common",
        "repro.baselines.multipaxos",
        "repro.baselines.raft",
        "repro.baselines.vr",
        "repro.baselines.megastore",
        "repro.baselines.pql",
        "repro.baselines.spanner",
    ]
    for module_name in message_modules:
        module = importlib.import_module(module_name)
        for name, cls in inspect.getmembers(module, inspect.isclass):
            if cls.__module__ != module_name:
                continue
            if not hasattr(cls, "__dataclass_fields__"):
                continue
            if name in ("Estimate", "LogEntry", "Snapshot"):
                continue  # value types, not wire messages
            category = getattr(cls, "category", None)
            if category not in VALID_CATEGORIES:
                missing.append(f"{module_name}.{name} -> {category!r}")
    assert not missing, missing


def test_every_experiment_script_is_in_the_pytest_suite():
    bench_dir = Path(repro.__file__).resolve().parents[2] / "benchmarks"
    scripts = {
        path.stem for path in bench_dir.glob("exp_*.py")
    }
    registered_source = (bench_dir / "test_experiments.py").read_text()
    unregistered = {
        name for name in scripts if f'"{name}"' not in registered_source
    }
    assert not unregistered, (
        f"experiments missing from test_experiments.py: {unregistered}"
    )


def test_public_classes_have_docstrings():
    undocumented = []
    for module in _all_modules():
        for name, cls in inspect.getmembers(module, inspect.isclass):
            if cls.__module__ != module.__name__ or name.startswith("_"):
                continue
            if not (cls.__doc__ or "").strip():
                undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, undocumented
