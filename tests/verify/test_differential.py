"""Differential testing: the iterative engine vs the reference checker.

``verify/_reference.py`` preserves the original Wing & Gong search
exactly as shipped.  These hypothesis suites generate random small
histories — mixed pending/complete, single- and multi-key, linearizable
and seeded-violation cases — and assert the new engine (iterative core +
quiescence segmentation) returns the identical verdict on every one.
Across the suites, well over 1000 distinct histories are checked per
run (300 + 300 + 200 + 200 + 100 examples).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.objects.kvstore import KVStoreSpec, delete, get, increment, put
from repro.objects.register import RegisterSpec, cas, read, write
from repro.verify._reference import check_linearizable_reference
from repro.verify.history import History, HistoryEntry
from repro.verify.linearizability import check_linearizable

REGISTER = RegisterSpec(initial=0)
KV = KVStoreSpec()


def _assert_same_verdict(spec, entries, partition=False):
    history = History(entries)
    new = check_linearizable(spec, history, partition_by_key=partition)
    old = check_linearizable_reference(spec, history,
                                       partition_by_key=partition)
    assert not new.undecided
    assert bool(new) == bool(old), (
        f"engines disagree: new={new!r} reference={old!r} on {entries}"
    )
    if new.ok and new.witness is not None:
        _assert_witness_valid(spec, entries, new.witness)


def _assert_witness_valid(spec, entries, witness):
    """A returned witness must be a real linearization: a subset of the
    history (all completed ops included) whose sequential execution
    matches every observed response and respects real-time order."""
    completed = [e for e in entries if not e.pending]
    assert len([e for e in witness if not e.pending]) == len(completed)
    state = spec.initial_state()
    for entry in witness:
        state, response = spec.apply_any(state, entry.op)
        if not entry.pending and not entry.response_unknown:
            assert response == entry.response, (entry, response)
    for i, early in enumerate(witness):
        for late in witness[i + 1:]:
            assert not (
                late.responded_at is not None
                and late.responded_at < early.invoked_at
            ), f"witness violates real-time order: {early} after {late}"


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def register_histories(draw):
    """Random register histories: overlapping intervals, pending ops,
    response_unknown entries, both valid and invalid responses."""
    n_ops = draw(st.integers(min_value=1, max_value=6))
    entries = []
    for i in range(n_ops):
        start = draw(st.floats(min_value=0, max_value=30))
        duration = draw(st.floats(min_value=0.0, max_value=12))
        is_pending = draw(st.booleans()) and draw(st.booleans())
        unknown = not is_pending and draw(
            st.booleans()) and draw(st.booleans()) and draw(st.booleans())
        kind = draw(st.sampled_from(["read", "write", "cas"]))
        if kind == "write":
            op = write(draw(st.integers(min_value=0, max_value=2)))
            response = None
        elif kind == "cas":
            op = cas(draw(st.integers(min_value=0, max_value=2)),
                     draw(st.integers(min_value=0, max_value=2)))
            response = draw(st.integers(min_value=0, max_value=2))
        else:
            op = read()
            response = draw(st.integers(min_value=0, max_value=2))
        entries.append(
            HistoryEntry(
                op=op,
                response=None if (is_pending or unknown) else response,
                invoked_at=start,
                responded_at=None if is_pending else start + duration,
                pid=i,
                response_unknown=unknown,
            )
        )
    return entries


@st.composite
def kv_histories(draw):
    """Random multi-key KV histories (single-key ops only, so both the
    whole-history and the partitioned check paths apply)."""
    n_ops = draw(st.integers(min_value=1, max_value=7))
    entries = []
    for i in range(n_ops):
        start = draw(st.floats(min_value=0, max_value=40))
        duration = draw(st.floats(min_value=0.0, max_value=10))
        is_pending = draw(st.booleans()) and draw(st.booleans())
        key = draw(st.sampled_from(["a", "b"]))
        kind = draw(st.sampled_from(["get", "put", "increment", "delete"]))
        if kind == "get":
            op = get(key)
            response = draw(st.sampled_from([None, 0, 1, 2]))
        elif kind == "put":
            op = put(key, draw(st.integers(min_value=0, max_value=2)))
            response = None
        elif kind == "increment":
            op = increment(key)
            response = draw(st.integers(min_value=0, max_value=3))
        else:
            op = delete(key)
            response = None
        entries.append(
            HistoryEntry(
                op=op,
                response=None if is_pending else response,
                invoked_at=start,
                responded_at=None if is_pending else start + duration,
                pid=i,
            )
        )
    return entries


@st.composite
def sequential_kv_runs(draw):
    """Histories generated by actually executing ops one at a time with
    occasional overlap: linearizable by construction, with natural
    quiescence points the segmenter should exploit."""
    n_ops = draw(st.integers(min_value=2, max_value=10))
    state = KV.initial_state()
    entries = []
    time = 0.0
    for i in range(n_ops):
        key = draw(st.sampled_from(["a", "b"]))
        kind = draw(st.sampled_from(["get", "put", "increment"]))
        if kind == "get":
            op = get(key)
        elif kind == "put":
            op = put(key, draw(st.integers(min_value=0, max_value=3)))
        else:
            op = increment(key)
        state, response = KV.apply(state, op)
        # Sometimes stretch the interval back so ops overlap, sometimes
        # leave a clean quiescence gap before the next one.
        stretch = draw(st.floats(min_value=0.0, max_value=3.0))
        entries.append(
            HistoryEntry(op=op, response=response,
                         invoked_at=max(0.0, time - stretch),
                         responded_at=time + 1.0, pid=i)
        )
        time += draw(st.sampled_from([0.5, 2.0, 5.0]))
    return entries


# ----------------------------------------------------------------------
# Differential suites
# ----------------------------------------------------------------------


@given(register_histories())
@settings(max_examples=300, deadline=None, derandomize=True)
def test_register_verdicts_match_reference(entries):
    _assert_same_verdict(REGISTER, entries)


@given(kv_histories())
@settings(max_examples=300, deadline=None, derandomize=True)
def test_kv_whole_history_verdicts_match_reference(entries):
    _assert_same_verdict(KV, entries)


@given(kv_histories())
@settings(max_examples=200, deadline=None, derandomize=True)
def test_kv_partitioned_verdicts_match_reference(entries):
    _assert_same_verdict(KV, entries, partition=True)


@given(sequential_kv_runs())
@settings(max_examples=200, deadline=None, derandomize=True)
def test_sequential_runs_linearizable_in_both_engines(entries):
    _assert_same_verdict(KV, entries)
    assert check_linearizable(KV, History(entries))


@given(sequential_kv_runs(), st.data())
@settings(max_examples=100, deadline=None, derandomize=True)
def test_seeded_violations_match_reference(entries, data):
    """Corrupt one response; both engines must agree on the outcome."""
    index = data.draw(st.integers(min_value=0, max_value=len(entries) - 1))
    target = entries[index]
    corrupted = HistoryEntry(
        op=target.op,
        response=999,  # value never written by any generated op
        invoked_at=target.invoked_at,
        responded_at=target.responded_at,
        pid=target.pid,
    )
    mutated = entries[:index] + [corrupted] + entries[index + 1:]
    _assert_same_verdict(KV, mutated)


def test_segmentation_off_matches_reference_on_concurrent_batch():
    """segment=False exercises the raw iterative core on one big search."""
    entries = [
        HistoryEntry(op=write(i), response=None, invoked_at=0.0,
                     responded_at=50.0, pid=i)
        for i in range(5)
    ] + [HistoryEntry(op=read(), response=3, invoked_at=60.0,
                      responded_at=61.0, pid=9)]
    history = History(entries)
    assert bool(check_linearizable(REGISTER, history, segment=False)) == \
        bool(check_linearizable_reference(REGISTER, history))


# ----------------------------------------------------------------------
# Fingerprint-bearing specs: bank, lock, queue
# ----------------------------------------------------------------------


@st.composite
def bank_histories(draw):
    """Random bank histories over two accounts, including the coupling
    operations (transfer, total) that forbid partitioning — exercised
    whole-history, where memoization runs on BankSpec.fingerprint."""
    from repro.objects.bank import (
        balance, deposit, total, transfer, withdraw,
    )
    n_ops = draw(st.integers(min_value=1, max_value=6))
    entries = []
    for i in range(n_ops):
        start = draw(st.floats(min_value=0, max_value=30))
        duration = draw(st.floats(min_value=0.0, max_value=10))
        is_pending = draw(st.booleans()) and draw(st.booleans())
        account = draw(st.sampled_from(["a", "b"]))
        kind = draw(st.sampled_from(
            ["balance", "deposit", "withdraw", "transfer", "total"]
        ))
        amount = draw(st.integers(min_value=1, max_value=3))
        if kind == "balance":
            op = balance(account)
            response = draw(st.integers(min_value=0, max_value=4))
        elif kind == "deposit":
            op = deposit(account, amount)
            response = None
        elif kind == "withdraw":
            op = withdraw(account, amount)
            response = draw(st.sampled_from([0, amount]))
        elif kind == "transfer":
            op = transfer("a", "b", amount)
            response = draw(st.booleans())
        else:
            op = total()
            response = draw(st.integers(min_value=0, max_value=6))
        entries.append(
            HistoryEntry(
                op=op,
                response=None if is_pending else response,
                invoked_at=start,
                responded_at=None if is_pending else start + duration,
                pid=i,
            )
        )
    return entries


@st.composite
def lock_queue_histories(draw):
    """Random single-object lock or queue histories (the un-partitionable
    specs); their fingerprint hooks drive memoization here."""
    from repro.objects.lock import LockSpec, acquire, owner, release
    from repro.objects.queue import QueueSpec, dequeue, enqueue, peek

    use_lock = draw(st.booleans())
    n_ops = draw(st.integers(min_value=1, max_value=6))
    entries = []
    for i in range(n_ops):
        start = draw(st.floats(min_value=0, max_value=25))
        duration = draw(st.floats(min_value=0.0, max_value=10))
        is_pending = draw(st.booleans()) and draw(st.booleans())
        if use_lock:
            who = draw(st.sampled_from(["p", "q"]))
            kind = draw(st.sampled_from(["acquire", "release", "owner"]))
            if kind == "acquire":
                op, response = acquire(who), draw(st.booleans())
            elif kind == "release":
                op, response = release(who), draw(st.booleans())
            else:
                op = owner()
                response = draw(st.sampled_from([None, "p", "q"]))
        else:
            kind = draw(st.sampled_from(["enqueue", "dequeue", "peek"]))
            if kind == "enqueue":
                op = enqueue(draw(st.integers(min_value=0, max_value=2)))
                response = None
            else:
                op = dequeue() if kind == "dequeue" else peek()
                response = draw(st.sampled_from([None, 0, 1, 2]))
        entries.append(
            HistoryEntry(
                op=op,
                response=None if is_pending else response,
                invoked_at=start,
                responded_at=None if is_pending else start + duration,
                pid=i,
            )
        )
    spec = LockSpec() if use_lock else QueueSpec()
    return spec, entries


@given(bank_histories())
@settings(max_examples=200, deadline=None, derandomize=True)
def test_bank_verdicts_match_reference(entries):
    from repro.objects.bank import BankSpec
    _assert_same_verdict(BankSpec(), entries)


@given(lock_queue_histories())
@settings(max_examples=200, deadline=None, derandomize=True)
def test_lock_and_queue_verdicts_match_reference(spec_entries):
    spec, entries = spec_entries
    _assert_same_verdict(spec, entries)


def test_bank_partitioned_check_refused_when_transfer_present():
    """partition_by_key over a history containing an un-partitionable
    operation must refuse (undecided/error), never silently split."""
    import pytest
    from repro.objects.bank import BankSpec, deposit, transfer
    entries = [
        HistoryEntry(op=deposit("a", 2), response=None,
                     invoked_at=0.0, responded_at=1.0, pid=0),
        HistoryEntry(op=transfer("a", "b", 1), response=True,
                     invoked_at=2.0, responded_at=3.0, pid=1),
    ]
    with pytest.raises(ValueError):
        check_linearizable(BankSpec(), History(entries),
                           partition_by_key=True)
