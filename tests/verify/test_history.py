"""Tests for history construction."""

from repro.sim.trace import RunStats
from repro.verify.history import History, HistoryEntry


def test_from_stats_builds_entries():
    stats = RunStats()
    stats.invoke((0, 1), 0, "rmw", "w", 0.0)
    stats.respond((0, 1), None, 2.0)
    stats.invoke((1, 1), 1, "read", "r", 1.0)
    stats.respond((1, 1), 5, 3.0)
    history = History.from_stats(stats)
    assert len(history) == 2
    kinds = {(e.op, e.response) for e in history}
    assert ("w", None) in kinds
    assert ("r", 5) in kinds


def test_from_stats_pending_included_by_default():
    stats = RunStats()
    stats.invoke((0, 1), 0, "rmw", "w", 0.0)
    history = History.from_stats(stats)
    assert len(history) == 1
    assert history.entries[0].pending


def test_from_stats_pending_excluded():
    stats = RunStats()
    stats.invoke((0, 1), 0, "rmw", "w", 0.0)
    history = History.from_stats(stats, include_pending=False)
    assert len(history) == 0


def test_from_stats_kind_filter():
    stats = RunStats()
    stats.invoke((0, 1), 0, "rmw", "w", 0.0)
    stats.respond((0, 1), None, 1.0)
    stats.invoke((1, 1), 1, "read", "r", 0.0)
    stats.respond((1, 1), 0, 1.0)
    rmw_only = History.from_stats(stats, kinds=("rmw",))
    assert len(rmw_only) == 1
    assert rmw_only.entries[0].op == "w"


def test_completed_filters_pending():
    entries = [
        HistoryEntry("a", None, 0.0, 1.0),
        HistoryEntry("b", None, 0.0, None),
    ]
    history = History(entries)
    assert len(history.completed()) == 1


def test_precedes():
    first = HistoryEntry("a", None, 0.0, 1.0)
    second = HistoryEntry("b", None, 2.0, 3.0)
    overlapping = HistoryEntry("c", None, 0.5, 2.5)
    assert first.precedes(second)
    assert not second.precedes(first)
    assert not first.precedes(overlapping) or overlapping.invoked_at > 1.0


def test_repr_counts_pending():
    history = History([HistoryEntry("a", None, 0.0, None)])
    assert "1 pending" in repr(history)
