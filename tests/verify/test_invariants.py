"""Tests for the invariant monitors."""

import pytest

from repro.objects.spec import Operation, OpInstance
from repro.verify.invariants import (
    BatchMonitor,
    InvariantViolation,
    LeaderIntervalMonitor,
    check_i2_i3,
)


def inst(pid, seq):
    return OpInstance((pid, seq), Operation("w", (pid, seq)))


class TestLeaderIntervalMonitor:
    def test_same_process_overlap_allowed(self):
        mon = LeaderIntervalMonitor()
        mon.record_true(0, 0.0, 10.0)
        mon.record_true(0, 5.0, 15.0)

    def test_disjoint_processes_allowed(self):
        mon = LeaderIntervalMonitor()
        mon.record_true(0, 0.0, 10.0)
        mon.record_true(1, 10.5, 20.0)

    def test_overlapping_processes_rejected(self):
        mon = LeaderIntervalMonitor()
        mon.record_true(0, 0.0, 10.0)
        with pytest.raises(InvariantViolation):
            mon.record_true(1, 9.0, 12.0)

    def test_touching_endpoints_rejected(self):
        mon = LeaderIntervalMonitor()
        mon.record_true(0, 0.0, 10.0)
        with pytest.raises(InvariantViolation):
            mon.record_true(1, 10.0, 11.0)

    def test_merging_keeps_detection(self):
        mon = LeaderIntervalMonitor()
        mon.record_true(0, 0.0, 5.0)
        mon.record_true(0, 4.0, 9.0)  # merges to [0, 9]
        with pytest.raises(InvariantViolation):
            mon.record_true(1, 8.0, 8.5)

    def test_backwards_interval_rejected(self):
        mon = LeaderIntervalMonitor()
        with pytest.raises(ValueError):
            mon.record_true(0, 5.0, 1.0)


class TestBatchMonitor:
    def test_agreeing_batches_ok(self):
        mon = BatchMonitor()
        ops = frozenset({inst(0, 1)})
        mon.record_batch(0, 1, ops, now=1.0)
        mon.record_batch(1, 1, ops, now=2.0)
        assert mon.highest_committed() == 1
        assert mon.commit_time(1) == 1.0

    def test_conflicting_batch_value_rejected(self):
        mon = BatchMonitor()
        mon.record_batch(0, 1, frozenset({inst(0, 1)}), now=1.0)
        with pytest.raises(InvariantViolation):
            mon.record_batch(1, 1, frozenset({inst(0, 2)}), now=2.0)

    def test_op_in_two_batches_rejected(self):
        mon = BatchMonitor()
        shared = inst(0, 1)
        mon.record_batch(0, 1, frozenset({shared}), now=1.0)
        with pytest.raises(InvariantViolation):
            mon.record_batch(0, 2, frozenset({shared, inst(0, 2)}), now=2.0)

    def test_commit_time_unknown_batch(self):
        assert BatchMonitor().commit_time(5) is None


class _FakeReplica:
    def __init__(self, pid, batches, estimate=None, crashed=False):
        self.pid = pid
        self.batches = batches
        self.estimate = estimate
        self.crashed = crashed


class _FakeEstimate:
    def __init__(self, k):
        self.k = k


class TestI2I3:
    def test_consistent_cluster_passes(self):
        b1, b2 = frozenset({inst(0, 1)}), frozenset({inst(0, 2)})
        replicas = [
            _FakeReplica(0, {1: b1, 2: b2}, _FakeEstimate(3)),
            _FakeReplica(1, {1: b1, 2: b2}),
            _FakeReplica(2, {1: b1}),
        ]
        check_i2_i3(replicas)

    def test_i2_violation(self):
        replicas = [
            _FakeReplica(0, {}, _FakeEstimate(3)),  # missing batch 2
            _FakeReplica(1, {}),
            _FakeReplica(2, {}),
        ]
        with pytest.raises(InvariantViolation):
            check_i2_i3(replicas)

    def test_i3_violation(self):
        b2 = frozenset({inst(0, 2)})
        replicas = [
            _FakeReplica(0, {2: b2}),  # knows batch 2, nobody has batch 1
            _FakeReplica(1, {}),
            _FakeReplica(2, {}),
        ]
        with pytest.raises(InvariantViolation):
            check_i2_i3(replicas)

    def test_crashed_replicas_count_conservatively(self):
        b1, b2 = frozenset({inst(0, 1)}), frozenset({inst(0, 2)})
        replicas = [
            _FakeReplica(0, {1: b1, 2: b2}),
            _FakeReplica(1, {}, crashed=True),
            _FakeReplica(2, {1: b1}),
        ]
        check_i2_i3(replicas)
