"""Tests for the linearizability checker."""

import pytest

from repro.objects.kvstore import KVStoreSpec, get, put
from repro.objects.register import RegisterSpec, cas, read, write
from repro.verify.history import History, HistoryEntry
from repro.verify.linearizability import check_linearizable


def entry(op, response, start, end, pid=0):
    return HistoryEntry(op=op, response=response, invoked_at=start,
                        responded_at=end, pid=pid)


def pending(op, start, pid=0):
    return HistoryEntry(op=op, response=None, invoked_at=start,
                        responded_at=None, pid=pid)


@pytest.fixture
def reg():
    return RegisterSpec(initial=0)


class TestBasics:
    def test_empty_history(self, reg):
        assert check_linearizable(reg, History([]))

    def test_single_read_of_initial_value(self, reg):
        h = History([entry(read(), 0, 0, 1)])
        assert check_linearizable(reg, h)

    def test_single_read_of_wrong_value(self, reg):
        h = History([entry(read(), 7, 0, 1)])
        assert not check_linearizable(reg, h)

    def test_sequential_write_then_read(self, reg):
        h = History([
            entry(write(1), None, 0, 1),
            entry(read(), 1, 2, 3),
        ])
        assert check_linearizable(reg, h)

    def test_stale_read_after_write_completes(self, reg):
        h = History([
            entry(write(1), None, 0, 1),
            entry(read(), 0, 2, 3),  # reads old value strictly after write
        ])
        assert not check_linearizable(reg, h)

    def test_concurrent_read_may_see_either_value(self, reg):
        for seen in (0, 1):
            h = History([
                entry(write(1), None, 0, 10),
                entry(read(), seen, 1, 2),
            ])
            assert check_linearizable(reg, h), seen

    def test_new_old_inversion_rejected(self, reg):
        # Two sequential reads: the second goes backwards in time.
        h = History([
            entry(write(1), None, 0, 10),
            entry(read(), 1, 1, 2, pid=1),
            entry(read(), 0, 3, 4, pid=2),
        ])
        assert not check_linearizable(reg, h)

    def test_witness_is_a_valid_order(self, reg):
        h = History([
            entry(write(1), None, 0, 1),
            entry(read(), 1, 2, 3),
        ])
        result = check_linearizable(reg, h)
        assert [e.op.name for e in result.witness] == ["write", "read"]


class TestCas:
    def test_cas_responses_constrain_order(self, reg):
        # Both CAS(0->1) succeed: impossible.
        h = History([
            entry(cas(0, 1), 0, 0, 10, pid=1),
            entry(cas(0, 1), 0, 0, 10, pid=2),
        ])
        assert not check_linearizable(reg, h)

    def test_one_cas_wins(self, reg):
        h = History([
            entry(cas(0, 1), 0, 0, 10, pid=1),
            entry(cas(0, 1), 1, 0, 10, pid=2),  # observed old value 1: lost
        ])
        assert check_linearizable(reg, h)


class TestPendingOps:
    def test_pending_write_may_have_taken_effect(self, reg):
        h = History([
            pending(write(1), 0),
            entry(read(), 1, 5, 6),
        ])
        assert check_linearizable(reg, h)

    def test_pending_write_may_not_have_taken_effect(self, reg):
        h = History([
            pending(write(1), 0),
            entry(read(), 0, 5, 6),
        ])
        assert check_linearizable(reg, h)

    def test_pending_op_cannot_take_effect_before_invocation(self, reg):
        h = History([
            entry(read(), 1, 0, 1),   # sees 1 before the write is invoked
            pending(write(1), 5),
        ])
        assert not check_linearizable(reg, h)

    def test_all_pending_history_is_linearizable(self, reg):
        h = History([pending(write(1), 0), pending(read(), 0)])
        assert check_linearizable(reg, h)


class TestPartitioning:
    def test_partitioned_check_on_kv(self):
        spec = KVStoreSpec()
        h = History([
            entry(put("a", 1), None, 0, 1),
            entry(get("a"), 1, 2, 3),
            entry(put("b", 2), None, 0, 1),
            entry(get("b"), 2, 2, 3),
        ])
        assert check_linearizable(spec, h, partition_by_key=True)

    def test_partitioned_check_finds_per_key_violation(self):
        spec = KVStoreSpec()
        h = History([
            entry(put("a", 1), None, 0, 1),
            entry(get("a"), None, 2, 3),  # stale read of key a
        ])
        result = check_linearizable(spec, h, partition_by_key=True)
        assert not result
        assert "'a'" in result.reason

    def test_partitioning_rejects_multi_key_ops(self):
        from repro.objects.kvstore import scan

        spec = KVStoreSpec()
        h = History([entry(scan(), (), 0, 1)])
        with pytest.raises(ValueError):
            check_linearizable(spec, h, partition_by_key=True)

    def test_cross_key_real_time_order_is_respected(self):
        # Partitioning is sound for KV: per-key orders embed in real time.
        spec = KVStoreSpec()
        h = History([
            entry(put("a", 1), None, 0, 1),
            entry(put("b", 1), None, 2, 3),
            entry(get("a"), 1, 4, 5),
            entry(get("b"), 1, 4, 5),
        ])
        assert check_linearizable(spec, h, partition_by_key=True)


class TestSearchLimits:
    @staticmethod
    def _blowup():
        # Many overlapping concurrent operations blow up the search; the
        # checker must refuse rather than give a wrong answer.
        entries = []
        for i in range(24):
            entries.append(entry(write(i), None, 0, 1000, pid=i))
        entries.append(entry(read(), 23, 2000, 2001))
        return History(entries)

    def test_configuration_cap_returns_undecided(self, reg):
        result = check_linearizable(reg, self._blowup(),
                                    max_configurations=100)
        assert not result
        assert result.undecided
        assert result.configurations > 100
        assert "100" in result.reason

    def test_configuration_cap_raises_when_opted_in(self, reg):
        with pytest.raises(RuntimeError):
            check_linearizable(reg, self._blowup(), max_configurations=100,
                               raise_on_limit=True)

    def test_undecided_is_not_a_violation_verdict(self, reg):
        result = check_linearizable(reg, self._blowup(),
                                    max_configurations=100)
        # An undecided result must be distinguishable from a proven
        # violation: callers branch on .undecided before .ok.
        assert result.undecided and not result.ok
        decided = check_linearizable(reg, History([entry(read(), 7, 0, 1)]))
        assert not decided.ok and not decided.undecided


class TestHistoryValidation:
    def test_response_before_invocation_rejected(self):
        with pytest.raises(ValueError):
            History([entry(read(), 0, 5, 4)])
