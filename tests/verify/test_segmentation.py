"""Unit tests pinning quiescence-segmentation soundness.

The segmenter may cut a history only where every earlier operation
responded *strictly* before every later one invoked; anything looser
would discard valid linearizations.  These tests pin the boundary
semantics (including the off-by-one at ``responded_at == invoked_at``),
the pending-operation rule, and the final-state frontier threading that
makes multi-state segments sound.
"""

import pytest

from repro.objects.kvstore import KVStoreSpec, get, put
from repro.objects.register import RegisterSpec, read, write
from repro.objects.spec import ObjectSpec, Operation
from repro.verify.history import History, HistoryEntry
from repro.verify.linearizability import (
    check_linearizable,
    quiescent_segments,
)

REG = RegisterSpec(initial=0)


def entry(op, response, start, end, pid=0):
    return HistoryEntry(op=op, response=response, invoked_at=start,
                        responded_at=end, pid=pid)


def pending(op, start, pid=0):
    return HistoryEntry(op=op, response=None, invoked_at=start,
                        responded_at=None, pid=pid)


class TestBoundaries:
    def test_disjoint_ops_split(self):
        a = entry(write(1), None, 0, 5)
        b = entry(read(), 1, 6, 10)
        assert quiescent_segments([a, b]) == [[a], [b]]

    def test_op_invoked_exactly_at_response_time_is_not_split(self):
        # responded_at == invoked_at means *concurrent* (real-time
        # precedence is strict), so the pair must share a segment.
        a = entry(write(1), None, 0, 5)
        b = entry(read(), 0, 5, 10)
        assert quiescent_segments([a, b]) == [[a, b]]
        # The verdict must allow the read to linearize first.
        assert check_linearizable(REG, History([a, b]))

    def test_split_happens_just_past_the_response(self):
        a = entry(write(1), None, 0, 5)
        b = entry(read(), 1, 5.0001, 10)
        assert quiescent_segments([a, b]) == [[a], [b]]

    def test_overlapping_ops_stay_together(self):
        a = entry(write(1), None, 0, 10)
        b = entry(read(), 0, 5, 6)
        c = entry(read(), 1, 20, 21)
        assert quiescent_segments([a, b, c]) == [[a, b], [c]]

    def test_pending_op_merges_everything_after_it(self):
        a = entry(write(1), None, 0, 5)
        p = pending(write(2), 6)
        b = entry(read(), 2, 100, 101)
        c = entry(read(), 2, 200, 201)
        assert quiescent_segments([a, p, b, c]) == [[a], [p, b, c]]

    def test_entries_are_sorted_by_invocation(self):
        a = entry(write(1), None, 0, 5)
        b = entry(read(), 1, 6, 10)
        assert quiescent_segments([b, a]) == [[a], [b]]

    def test_chain_of_sequential_ops_fully_segments(self):
        entries = [entry(write(i), None, 10 * i, 10 * i + 5, pid=i)
                   for i in range(8)]
        assert quiescent_segments(entries) == [[e] for e in entries]


class TestFrontierThreading:
    """A segment can end in several states; the chain must try them all."""

    def _two_writes(self):
        # Both writes complete, fully overlapping: the segment's final
        # state is 1 or 2 depending on linearization order.
        return [
            entry(write(1), None, 0, 10, pid=1),
            entry(write(2), None, 0, 10, pid=2),
        ]

    def test_later_read_may_observe_either_final_state(self):
        for seen in (1, 2):
            h = History(self._two_writes() + [entry(read(), seen, 20, 21)])
            assert check_linearizable(REG, h), seen

    def test_later_read_of_unwritten_value_rejected(self):
        h = History(self._two_writes() + [entry(read(), 7, 20, 21)])
        assert not check_linearizable(REG, h)

    def test_frontier_threads_across_multiple_segments(self):
        # Segment 1 ends in {1, 2}; segment 2's write(3) collapses the
        # frontier; segment 3's read pins it.
        h = History(
            self._two_writes()
            + [entry(write(3), None, 20, 21)]
            + [entry(read(), 3, 30, 31)]
        )
        assert check_linearizable(REG, h)
        h_bad = History(
            self._two_writes()
            + [entry(write(3), None, 20, 21)]
            + [entry(read(), 1, 30, 31)]  # overwritten value
        )
        assert not check_linearizable(REG, h_bad)

    def test_segmented_and_unsegmented_agree(self):
        cases = [
            History(self._two_writes() + [entry(read(), 2, 20, 21)]),
            History(self._two_writes() + [entry(read(), 7, 20, 21)]),
            History([entry(write(1), None, 0, 5), pending(write(2), 6),
                     entry(read(), 2, 50, 51)]),
        ]
        for h in cases:
            assert bool(check_linearizable(REG, h)) == \
                bool(check_linearizable(REG, h, segment=False))


class TestFingerprintHook:
    """The memo key uses ObjectSpec.fingerprint, so a spec with
    unhashable states works once it overrides the hook."""

    class DictSpec(ObjectSpec):
        # States are plain (unhashable) dicts; fingerprint canonicalizes.
        name = "dictmap"

        def initial_state(self):
            return {}

        def apply(self, state, op):
            if op.name == "dget":
                return state, state.get(op.args[0])
            new = dict(state)
            new[op.args[0]] = op.args[1]
            return new, None

        def is_read(self, op):
            return op.name == "dget"

        def fingerprint(self, state):
            return tuple(sorted(state.items()))

    def test_unhashable_states_check_via_fingerprint(self):
        spec = self.DictSpec()
        h = History([
            entry(Operation("dput", ("k", 1)), None, 0, 1),
            entry(Operation("dget", ("k",)), 1, 2, 3),
        ])
        assert check_linearizable(spec, h)
        h_bad = History([
            entry(Operation("dput", ("k", 1)), None, 0, 1),
            entry(Operation("dget", ("k",)), 2, 2, 3),
        ])
        assert not check_linearizable(spec, h_bad)

    def test_default_fingerprint_is_the_state(self):
        assert REG.fingerprint(41) == 41


class TestParallelSubchecks:
    def test_parallel_and_serial_verdicts_identical(self):
        spec = KVStoreSpec()
        entries = []
        t = 0.0
        for i in range(12):
            key = "abc"[i % 3]
            entries.append(entry(put(key, i), None, t, t + 1, pid=i))
            entries.append(entry(get(key), i, t + 2, t + 3, pid=100 + i))
            t += 5.0
        h = History(entries)
        serial = check_linearizable(spec, h, partition_by_key=True)
        fanned = check_linearizable(spec, h, partition_by_key=True,
                                    workers=3)
        assert bool(serial) == bool(fanned) is True

        # Break one key; both paths must name the same sub-history.
        bad = entries[:1] + [entry(get("a"), 999, 2, 3, pid=50)] + entries[1:]
        serial = check_linearizable(spec, History(bad), partition_by_key=True)
        fanned = check_linearizable(spec, History(bad), partition_by_key=True,
                                    workers=3)
        assert not serial and not fanned
        assert serial.reason == fanned.reason

    def test_partitioned_undecided_raises_only_on_opt_in(self):
        spec = KVStoreSpec()
        entries = [entry(put("a", i), None, 0, 1000, pid=i)
                   for i in range(20)]
        entries.append(entry(get("a"), 19, 2000, 2001))
        h = History(entries)
        result = check_linearizable(spec, h, partition_by_key=True,
                                    max_configurations=50)
        assert result.undecided and "'a'" in result.reason
        with pytest.raises(RuntimeError):
            check_linearizable(spec, h, partition_by_key=True,
                               max_configurations=50, raise_on_limit=True)
